// Materialized aggregate views over CommitEpoch deltas (edb/view.h):
// registration + per-flush delta folds through the store seam, the
// Reopen invalidate-and-rebuild-lazily contract (reopen mid-dashboard,
// pinned snapshots surviving a restart while views rebuild), RowChunk's
// append-past-capacity refusal, and engine-level bit-identity of the O(1)
// view path against the snapshot/locked scan paths — on ObliDB for exact
// answers and on Crypt-eps for the full Laplace noise stream. The racing
// case (owner flush-folds vs analyst view answers) is part of the CI TSan
// job's regex.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "edb/crypte_engine.h"
#include "edb/encrypted_table.h"
#include "edb/oblidb_engine.h"
#include "edb/snapshot.h"
#include "edb/view.h"
#include "query/parser.h"
#include "query/plan.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::edb {
namespace {

using testutil::Trip;
using workload::TripSchema;

/// Plans `sql` against the trip schema the way a server Prepare would
/// (every table resolves to TripSchema; catalog epoch 0).
std::shared_ptr<const query::QueryPlan> PlanFor(const std::string& sql) {
  auto parsed = query::ParseSelect(sql);
  EXPECT_OK(parsed);
  static const query::Schema schema = TripSchema();
  auto plan = query::PlanSelect(
      parsed.value(),
      [](const std::string&) -> const query::Schema* { return &schema; },
      query::PlannerOptions{});
  EXPECT_OK(plan);
  return plan.value();
}

// ------------------------------------------------------ RowChunk hardening

TEST(RowChunkTest, AppendPastCapacityIsRefused) {
  // The address-stability invariant every pinned SnapshotView rides on:
  // a chunk never reallocates, so an append past the reservation must be
  // refused loudly instead of silently dangling outstanding spans.
  RowChunk chunk(2);
  ASSERT_OK(chunk.Append(query::Row{}));
  ASSERT_FALSE(chunk.full());
  ASSERT_OK(chunk.Append(query::Row{}));
  EXPECT_TRUE(chunk.full());
  EXPECT_EQ(chunk.capacity(), 2u);

  const query::Row* stable = chunk.rows.data();
  auto st = chunk.Append(query::Row{});
  EXPECT_NOT_OK(st);
  EXPECT_EQ(chunk.rows.size(), 2u);       // the chunk was left untouched
  EXPECT_EQ(chunk.rows.data(), stable);   // and never reallocated
}

// ---------------------------------------------------------- eligibility

TEST(ViewEligibilityTest, OnlyAppendFoldableAggregatesQualify) {
  // COUNT/SUM/AVG fold as pure (count, sum) monoids under appends —
  // filtered and grouped variants included.
  EXPECT_TRUE(query::PlanIsViewEligible(
      *PlanFor("SELECT COUNT(*) FROM YellowCab")));
  EXPECT_TRUE(query::PlanIsViewEligible(*PlanFor(
      "SELECT SUM(fare) FROM YellowCab WHERE pickupID BETWEEN 1 AND 3")));
  EXPECT_TRUE(query::PlanIsViewEligible(*PlanFor(
      "SELECT pickupID, AVG(fare) FROM YellowCab GROUP BY pickupID")));
  // MIN/MAX would bake append-only-forever into view state; joins are not
  // single-table scans.
  EXPECT_FALSE(query::PlanIsViewEligible(
      *PlanFor("SELECT MIN(fare) FROM YellowCab")));
  EXPECT_FALSE(query::PlanIsViewEligible(
      *PlanFor("SELECT MAX(fare) FROM YellowCab")));
  EXPECT_FALSE(query::PlanIsViewEligible(*PlanFor(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime")));
}

// ------------------------------------------------- store-level lifecycle

TEST(ViewRegistryTest, FoldsExactlyTheCommittedDeltaPerFlush) {
  StorageConfig cfg;
  cfg.flush_every_update = false;  // manual commit points
  cfg.num_shards = 2;
  EncryptedTableStore store("YellowCab", TripSchema(), Bytes(32, 1), cfg);
  std::atomic<int64_t> folds{0};
  store.set_view_fold_counter(&folds);

  ASSERT_OK(store.Setup({Trip(1, 1), Trip(2, 2)}));
  ASSERT_OK(store.Flush());  // commit point: epoch 1, 2 rows committed

  auto plan = PlanFor("SELECT COUNT(*) FROM YellowCab");
  ASSERT_OK(store.RegisterView(plan));
  EXPECT_EQ(store.registered_views(), 1u);
  EXPECT_EQ(folds.load(), 1);  // registration warm-folds the prefix
  auto hit = store.TryViewAnswer(plan->fingerprint, plan->canonical_text);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result.scalar, 2.0);
  EXPECT_EQ(hit->committed_rows, 2);

  // Re-registration is idempotent: no second view, no re-fold.
  ASSERT_OK(store.RegisterView(plan));
  EXPECT_EQ(store.registered_views(), 1u);
  EXPECT_EQ(folds.load(), 1);

  // Appended-but-unflushed rows stay invisible: the epoch is unchanged,
  // the view is still current, and the answer is still the committed 2.
  ASSERT_OK(store.Update({Trip(3, 3)}));
  hit = store.TryViewAnswer(plan->fingerprint, plan->canonical_text);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result.scalar, 2.0);
  EXPECT_EQ(folds.load(), 1);

  // The flush commits the 1-row delta: exactly one more fold, answer 3.
  ASSERT_OK(store.Flush());
  EXPECT_EQ(folds.load(), 2);
  hit = store.TryViewAnswer(plan->fingerprint, plan->canonical_text);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result.scalar, 3.0);
  EXPECT_EQ(hit->committed_rows, 3);

  // An idle flush commits nothing and folds nothing.
  ASSERT_OK(store.Flush());
  EXPECT_EQ(folds.load(), 2);

  // A wrong canonical text never answers (fingerprint-collision guard).
  EXPECT_FALSE(store.TryViewAnswer(plan->fingerprint, "SELECT something else")
                   .has_value());
}

TEST(ViewReopenTest, ReopenMidDashboardInvalidatesThenRebuildsLazily) {
  // Reopen advances the CommitEpoch without committing rows: every view
  // invalidates, the dashboard's next Execute falls back to a scan
  // (nullopt here), and the next committing flush rebuilds the state from
  // row zero over the recovered prefix.
  namespace fs = std::filesystem;
  static int counter = 0;
  std::string dir =
      (fs::temp_directory_path() /
       ("dpsync-view-test-" + std::to_string(counter++))).string();
  fs::remove_all(dir);
  StorageConfig cfg;
  cfg.backend = StorageBackendKind::kSegmentLog;
  cfg.dir = dir;
  cfg.num_shards = 2;
  {
    EncryptedTableStore store("YellowCab", TripSchema(), Bytes(32, 1), cfg);
    std::vector<Record> init;
    for (int64_t i = 0; i < 50; ++i) init.push_back(Trip(i, i % 5));
    ASSERT_OK(store.Setup(init));  // auto-flush: committed on return

    auto plan = PlanFor("SELECT SUM(fare) FROM YellowCab");
    ASSERT_OK(store.RegisterView(plan));
    auto hit = store.TryViewAnswer(plan->fingerprint, plan->canonical_text);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result.scalar, 50 * 5.0);  // every trip fares 5.0

    ASSERT_OK(store.Reopen());
    // Invalidated, not answering — a dashboard query between the restart
    // and the next flush takes the scan path.
    EXPECT_FALSE(
        store.TryViewAnswer(plan->fingerprint, plan->canonical_text)
            .has_value());
    EXPECT_EQ(store.registered_views(), 1u);  // the registration survives

    // The next committing flush rebuilds from row zero: the answer spans
    // the recovered prefix AND the new delta.
    ASSERT_OK(store.Update({Trip(100, 1)}));
    hit = store.TryViewAnswer(plan->fingerprint, plan->canonical_text);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result.scalar, 51 * 5.0);
    EXPECT_EQ(hit->committed_rows, 51);
  }
  fs::remove_all(dir);
}

TEST(ViewReopenTest, PinnedSnapshotStaysStableWhileViewsRebuild) {
  // A reader that pinned a snapshot before the restart keeps scanning
  // pre-restart chunks (it co-owns them) while the view layer goes
  // through its invalidate -> rebuild cycle; afterwards both regimes
  // agree with the recovered table.
  namespace fs = std::filesystem;
  static int counter = 0;
  std::string dir =
      (fs::temp_directory_path() /
       ("dpsync-view-pin-test-" + std::to_string(counter++))).string();
  fs::remove_all(dir);
  StorageConfig cfg;
  cfg.backend = StorageBackendKind::kSegmentLog;
  cfg.dir = dir;
  cfg.num_shards = 2;
  {
    EncryptedTableStore store("YellowCab", TripSchema(), Bytes(32, 1), cfg);
    std::vector<Record> init;
    for (int64_t i = 0; i < 40; ++i) init.push_back(Trip(i, i % 4));
    ASSERT_OK(store.Setup(init));
    auto plan = PlanFor("SELECT COUNT(*) FROM YellowCab");
    ASSERT_OK(store.RegisterView(plan));

    SnapshotView pinned;
    {
      std::lock_guard<std::mutex> lk(store.table_mutex());
      auto snap = store.Snapshot();
      ASSERT_OK(snap);
      pinned = std::move(snap.value());
    }
    ASSERT_EQ(pinned.total_rows, 40);

    ASSERT_OK(store.Reopen());
    ASSERT_OK(store.Update({Trip(50, 1), Trip(51, 2)}));

    // The pinned view still walks exactly the 40 pre-restart rows...
    int64_t pinned_rows = 0;
    for (const auto& span : pinned.spans) {
      pinned_rows += static_cast<int64_t>(span.size);
    }
    EXPECT_EQ(pinned_rows, 40);
    // ...while the rebuilt view answers over the recovered + new prefix.
    auto hit = store.TryViewAnswer(plan->fingerprint, plan->canonical_text);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->result.scalar, 42.0);
  }
  fs::remove_all(dir);
}

// ------------------------------------------------ engine-level identity

TEST(ViewIdentityTest, ObliDbViewAnswersBitIdenticalToScans) {
  // Same data, same query mix, interleaved appends: answers, committed
  // row counts and virtual QET must be bit-identical with views on and
  // off — the view path changes wall-clock only.
  const std::vector<std::string> kQueries = {
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 1 AND 4",
      "SELECT SUM(fare) FROM YellowCab",
      "SELECT pickupID, COUNT(*) AS Cnt FROM YellowCab GROUP BY pickupID",
      "SELECT AVG(fare) FROM YellowCab WHERE pickupID BETWEEN 0 AND 3",
  };
  struct Outcome {
    std::string result;
    int64_t scanned;
    double qet;
  };
  auto run = [&](bool views) {
    ObliDbConfig cfg;
    cfg.master_seed = 5;
    cfg.materialized_views = views;
    cfg.vectorized_execution = testutil::EnvVectorized();
    cfg.storage.num_shards = 2;
    ObliDbServer server(cfg);
    auto t = server.CreateTable("YellowCab", TripSchema());
    EXPECT_TRUE(t.ok());
    std::vector<Record> init;
    for (int64_t i = 0; i < 64; ++i) init.push_back(Trip(i, i % 7));
    EXPECT_OK(t.value()->Setup(init));
    auto session = server.CreateSession();
    std::vector<PreparedQuery> prepared;
    for (const auto& sql : kQueries) {
      auto q = session->Prepare(sql);
      EXPECT_TRUE(q.ok());
      prepared.push_back(q.value());
    }
    std::vector<Outcome> outcomes;
    for (int round = 0; round < 4; ++round) {
      for (const auto& q : prepared) {
        auto r = session->Execute(q);
        EXPECT_TRUE(r.ok());
        outcomes.push_back({r->result.ToString(),
                            r->stats.records_scanned,
                            r->stats.virtual_seconds});
      }
      EXPECT_OK(t.value()->Update(
          {Trip(100 + round, round % 7), Trip(200 + round, round % 7)}));
    }
    auto stats = server.stats();
    if (views) {
      EXPECT_GT(stats.view_hits, 0);
      EXPECT_GT(stats.view_folds, 0);
      EXPECT_EQ(stats.snapshot_scans, 0);  // every query here is eligible
    } else {
      EXPECT_EQ(stats.view_hits, 0);
      EXPECT_EQ(stats.view_folds, 0);
      EXPECT_GT(stats.snapshot_scans, 0);
    }
    return outcomes;
  };
  auto scanned = run(false);
  auto viewed = run(true);
  ASSERT_EQ(scanned.size(), viewed.size());
  for (size_t i = 0; i < scanned.size(); ++i) {
    EXPECT_EQ(viewed[i].result, scanned[i].result) << kQueries[i % 4];
    EXPECT_EQ(viewed[i].scanned, scanned[i].scanned) << kQueries[i % 4];
    EXPECT_EQ(viewed[i].qet, scanned[i].qet) << kQueries[i % 4];
  }
}

TEST(ViewIdentityTest, CryptEpsNoiseStreamIdenticalViewsOnOff) {
  // The view path substitutes only the exact aggregate; budget reserve
  // and Laplace release are untouched, so the same seed must produce the
  // bit-identical noisy answer stream with views on and off.
  auto run = [](bool views) {
    CryptEpsConfig cfg;
    cfg.master_seed = 11;
    cfg.materialized_views = views;
    cfg.vectorized_execution = testutil::EnvVectorized();
    CryptEpsServer server(cfg);
    auto t = server.CreateTable("YellowCab", TripSchema());
    EXPECT_TRUE(t.ok());
    std::vector<Record> init;
    for (int64_t i = 0; i < 64; ++i) init.push_back(Trip(i, i % 7));
    EXPECT_OK(t.value()->Setup(init));
    auto session = server.CreateSession();
    std::vector<std::pair<double, double>> outcomes;  // (answer, qet)
    for (int round = 0; round < 3; ++round) {
      for (const char* sql :
           {"SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 1 AND 4",
            "SELECT SUM(fare) FROM YellowCab"}) {
        auto q = session->Prepare(sql);
        EXPECT_TRUE(q.ok());
        auto r = session->Execute(q.value());
        EXPECT_TRUE(r.ok());
        outcomes.emplace_back(r->result.scalar, r->stats.virtual_seconds);
      }
      EXPECT_OK(t.value()->Update({Trip(100 + round, round % 7)}));
    }
    auto stats = server.stats();
    if (views) {
      EXPECT_GT(stats.view_hits, 0);
      EXPECT_EQ(stats.snapshot_scans, 0);
    } else {
      EXPECT_EQ(stats.view_hits, 0);
      EXPECT_GT(stats.snapshot_scans, 0);
    }
    return outcomes;
  };
  auto scanned = run(false);
  auto viewed = run(true);
  ASSERT_EQ(scanned.size(), viewed.size());
  for (size_t i = 0; i < scanned.size(); ++i) {
    EXPECT_EQ(viewed[i].first, scanned[i].first) << i;    // exact bits,
    EXPECT_EQ(viewed[i].second, scanned[i].second) << i;  // not NEAR
  }
}

// ----------------------------------------------------------- concurrency

TEST(ViewConcurrencyTest, ViewAnswersAreCommittedPrefixesUnderRacingAppends) {
  // The TSan case for the view layer: owner appends auto-flush and fold
  // under the table mutex while analysts answer from the view. Every
  // answer must be a committed prefix (== 1 mod 3 given the 1-row Setup)
  // and monotone per analyst — a torn fold or a stale-epoch answer would
  // break one of the two.
  ObliDbConfig cfg;
  cfg.storage.num_shards = 4;
  cfg.admission.max_in_flight = 4;
  cfg.admission.max_queue = 4096;
  cfg.vectorized_execution = testutil::EnvVectorized();
  ASSERT_TRUE(cfg.materialized_views);  // the default stays on
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup({Trip(0, 1)}));

  constexpr int kBatches = 60;
  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 1; b <= kBatches; ++b) {
      std::vector<Record> batch = {Trip(b, 1), Trip(b, 2), Trip(b, 3)};
      if (!t.value()->Update(batch).ok()) ++failures;
    }
  });
  std::vector<std::thread> analysts;
  for (int a = 0; a < 3; ++a) {
    analysts.emplace_back([&] {
      auto session = server.CreateSession();
      auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
      if (!q.ok()) {
        ++failures;
        return;
      }
      double last = 0;
      for (int i = 0; i < 20; ++i) {
        auto r = session->Execute(q.value());
        if (!r.ok()) {
          ++failures;
          continue;
        }
        double count = r->result.scalar;
        if (static_cast<int64_t>(count - 1) % 3 != 0) ++failures;
        if (count < last) ++failures;
        last = count;
      }
    });
  }
  owner.join();
  for (auto& th : analysts) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 1.0 + 3.0 * kBatches);
  // The fast path really served the race: every analyst answer was a
  // view hit fed by the owner's per-flush folds.
  EXPECT_GT(server.stats().view_hits, 0);
  EXPECT_GT(server.stats().view_folds, 0);
}

}  // namespace
}  // namespace dpsync::edb
