// Tests for the relational layer: values, schemas, row serialization, the
// SQL parser, the reference executor, and dummy-aware query rewriting.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/ast.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "query/result.h"
#include "query/rewriter.h"
#include "query/schema.h"
#include "query/value.h"

namespace dpsync::query {
namespace {

// ---------------------------------------------------------------- Values

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(int64_t{3}).Compare(Value(3.5)), 0);
  EXPECT_GT(Value(4.1).Compare(Value(int64_t{4})), 0);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value(std::string("abc")).Compare(Value(std::string("abd"))), 0);
  // Numbers order before strings.
  EXPECT_LT(Value(int64_t{5}).Compare(Value(std::string("5"))), 0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_TRUE(Value(int64_t{1}).Truthy());
  EXPECT_FALSE(Value(std::string("")).Truthy());
  EXPECT_TRUE(Value(0.1).Truthy());
}

TEST(ValueTest, BoolHelper) {
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
  EXPECT_EQ(Value::Bool(false).AsInt(), 0);
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, FindIndex) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  EXPECT_EQ(s.FindIndex("b").value(), 1u);
  EXPECT_FALSE(s.FindIndex("c").has_value());
}

TEST(SchemaTest, DummyFlagDetection) {
  Schema with({{"x", ValueType::kInt}, {"isDummy", ValueType::kInt}});
  Schema without({{"x", ValueType::kInt}});
  EXPECT_TRUE(with.HasDummyFlag());
  EXPECT_FALSE(without.HasDummyFlag());
}

TEST(RowSerializationTest, RoundTripAllTypes) {
  Row row{Value(int64_t{-42}), Value(3.25), Value(std::string("hello")),
          Value()};
  auto back = DeserializeRow(SerializeRow(row));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 4u);
  EXPECT_EQ((*back)[0].AsInt(), -42);
  EXPECT_DOUBLE_EQ((*back)[1].AsDouble(), 3.25);
  EXPECT_EQ((*back)[2].AsString(), "hello");
  EXPECT_TRUE((*back)[3].is_null());
}

TEST(RowSerializationTest, TruncatedInputRejected) {
  Row row{Value(int64_t{1})};
  Bytes bytes = SerializeRow(row);
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(DeserializeRow(bytes).ok());
}

TEST(RowSerializationTest, EmptyBytesRejected) {
  EXPECT_FALSE(DeserializeRow({}).ok());
}

TEST(RowSerializationTest, IsDummyRowChecksFlag) {
  Schema s({{"x", ValueType::kInt}, {"isDummy", ValueType::kInt}});
  EXPECT_TRUE(IsDummyRow(s, {Value(int64_t{1}), Value::Bool(true)}));
  EXPECT_FALSE(IsDummyRow(s, {Value(int64_t{1}), Value::Bool(false)}));
}

// ---------------------------------------------------------------- Parser

TEST(ParserTest, PaperQ1) {
  auto q = ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->table, "YellowCab");
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].agg, AggFunc::kCount);
  ASSERT_NE(q->where, nullptr);
  EXPECT_FALSE(q->join.has_value());
}

TEST(ParserTest, PaperQ2) {
  auto q = ParseSelect(
      "SELECT pickupID, COUNT(*) AS PickupCnt FROM YellowCab GROUP BY "
      "pickupID");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_EQ(q->items[0].agg, AggFunc::kNone);
  EXPECT_EQ(q->items[1].agg, AggFunc::kCount);
  EXPECT_EQ(q->items[1].alias, "PickupCnt");
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0], "pickupID");
}

TEST(ParserTest, PaperQ3) {
  auto q = ParseSelect(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->join.has_value());
  EXPECT_EQ(q->join->table, "GreenTaxi");
  EXPECT_EQ(q->join->left_column, "YellowCab.pickTime");
  EXPECT_EQ(q->join->right_column, "GreenTaxi.pickTime");
}

TEST(ParserTest, SumAvgMinMax) {
  for (const char* f : {"SUM", "AVG", "MIN", "MAX"}) {
    auto q = ParseSelect(std::string("SELECT ") + f + "(fare) FROM T");
    ASSERT_TRUE(q.ok()) << f;
    EXPECT_EQ(q->items[0].column, "fare");
  }
}

TEST(ParserTest, BooleanPredicates) {
  auto q = ParseSelect(
      "SELECT COUNT(*) FROM T WHERE a >= 3 AND (b < 7 OR NOT c = 1)");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q->where, nullptr);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseSelect("select count(*) from T where x = 1").ok());
}

TEST(ParserTest, StringLiteral) {
  auto q = ParseSelect("SELECT COUNT(*) FROM T WHERE name = 'bob'");
  ASSERT_TRUE(q.ok());
}

TEST(ParserTest, StringLiteralWithEscapedQuote) {
  // '' inside a string literal is an escaped single quote, and ToString
  // renders it back the same way (injective canonical text).
  auto e = ParseExpression("name = 'it''s'");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "name = 'it''s'");
  Schema s({{"name", ValueType::kString}});
  EXPECT_TRUE((*e)->Eval(s, {Value(std::string("it's"))}).Truthy());
  EXPECT_FALSE((*e)->Eval(s, {Value(std::string("its"))}).Truthy());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseSelect("FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(* FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*) FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*) FROM T WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*) FROM T GROUP").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM T").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(*) FROM T trailing junk").ok());
}

TEST(ParserTest, ToStringRoundTrips) {
  auto q = ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  ASSERT_TRUE(q.ok());
  auto again = ParseSelect(q->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), q->ToString());
}

TEST(ParserTest, ExpressionEntryPoint) {
  auto e = ParseExpression("x BETWEEN 1 AND 5");
  ASSERT_TRUE(e.ok());
  Schema s({{"x", ValueType::kInt}});
  EXPECT_TRUE((*e)->Eval(s, {Value(int64_t{3})}).Truthy());
  EXPECT_FALSE((*e)->Eval(s, {Value(int64_t{9})}).Truthy());
}

// -------------------------------------------------------------- Executor

Table MakeTestTable() {
  Table t;
  t.name = "T";
  t.schema = Schema({{"id", ValueType::kInt},
                     {"zone", ValueType::kInt},
                     {"fare", ValueType::kDouble},
                     {"isDummy", ValueType::kInt}});
  auto add = [&](int64_t id, int64_t zone, double fare, bool dummy) {
    t.rows.push_back({Value(id), Value(zone), Value(fare), Value::Bool(dummy)});
  };
  add(1, 10, 5.0, false);
  add(2, 10, 7.0, false);
  add(3, 20, 9.0, false);
  add(4, 30, 11.0, false);
  add(5, 20, 1.0, true);  // dummy
  return t;
}

TEST(ExecutorTest, CountStar) {
  Table t = MakeTestTable();
  Catalog c;
  c.AddTable(&t);
  Executor ex(&c);
  auto q = ParseSelect("SELECT COUNT(*) FROM T");
  auto r = ex.Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 5.0);  // no rewrite: dummies counted
}

TEST(ExecutorTest, WhereFilters) {
  Table t = MakeTestTable();
  Catalog c;
  c.AddTable(&t);
  Executor ex(&c);
  auto q = ParseSelect("SELECT COUNT(*) FROM T WHERE zone BETWEEN 10 AND 20");
  auto r = ex.Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 4.0);
}

TEST(ExecutorTest, SumAvgMinMax) {
  Table t = MakeTestTable();
  Catalog c;
  c.AddTable(&t);
  Executor ex(&c);
  EXPECT_DOUBLE_EQ(
      ex.Execute(ParseSelect("SELECT SUM(fare) FROM T").value())->scalar, 33.0);
  EXPECT_DOUBLE_EQ(
      ex.Execute(ParseSelect("SELECT AVG(fare) FROM T").value())->scalar, 6.6);
  EXPECT_DOUBLE_EQ(
      ex.Execute(ParseSelect("SELECT MIN(fare) FROM T").value())->scalar, 1.0);
  EXPECT_DOUBLE_EQ(
      ex.Execute(ParseSelect("SELECT MAX(fare) FROM T").value())->scalar, 11.0);
}

TEST(ExecutorTest, GroupByCounts) {
  Table t = MakeTestTable();
  Catalog c;
  c.AddTable(&t);
  Executor ex(&c);
  auto r = ex.Execute(
      ParseSelect("SELECT zone, COUNT(*) FROM T GROUP BY zone").value());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->grouped);
  EXPECT_DOUBLE_EQ(r->groups.at(Value(int64_t{10})), 2.0);
  EXPECT_DOUBLE_EQ(r->groups.at(Value(int64_t{20})), 2.0);
  EXPECT_DOUBLE_EQ(r->groups.at(Value(int64_t{30})), 1.0);
}

TEST(ExecutorTest, UnknownTableIsNotFound) {
  Catalog c;
  Executor ex(&c);
  EXPECT_EQ(ex.Execute(ParseSelect("SELECT COUNT(*) FROM X").value())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(ExecutorTest, ProjectionOnlyUnimplemented) {
  Table t = MakeTestTable();
  Catalog c;
  c.AddTable(&t);
  Executor ex(&c);
  EXPECT_EQ(
      ex.Execute(ParseSelect("SELECT zone FROM T").value()).status().code(),
      StatusCode::kUnimplemented);
}

TEST(ExecutorTest, HashJoinCountsMatches) {
  Table a;
  a.name = "A";
  a.schema = Schema({{"k", ValueType::kInt}, {"isDummy", ValueType::kInt}});
  Table b;
  b.name = "B";
  b.schema = Schema({{"k", ValueType::kInt}, {"isDummy", ValueType::kInt}});
  for (int64_t i = 0; i < 6; ++i) {
    a.rows.push_back({Value(i), Value::Bool(false)});
  }
  for (int64_t i = 3; i < 9; ++i) {
    b.rows.push_back({Value(i), Value::Bool(false)});
  }
  Catalog c;
  c.AddTable(&a);
  c.AddTable(&b);
  Executor ex(&c);
  auto q = ParseSelect("SELECT COUNT(*) FROM A INNER JOIN B ON A.k = B.k");
  auto r = ex.Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 3.0);  // keys 3,4,5
}

TEST(ExecutorTest, JoinDuplicateKeysMultiply) {
  Table a;
  a.name = "A";
  a.schema = Schema({{"k", ValueType::kInt}});
  Table b;
  b.name = "B";
  b.schema = Schema({{"k", ValueType::kInt}});
  a.rows = {{Value(int64_t{1})}, {Value(int64_t{1})}};
  b.rows = {{Value(int64_t{1})}, {Value(int64_t{1})}, {Value(int64_t{1})}};
  Catalog c;
  c.AddTable(&a);
  c.AddTable(&b);
  Executor ex(&c);
  auto r = ex.Execute(
      ParseSelect("SELECT COUNT(*) FROM A INNER JOIN B ON A.k = B.k").value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 6.0);
}

// --------------------------------------------------------------- Results

TEST(QueryResultTest, ScalarL1) {
  EXPECT_DOUBLE_EQ(QueryResult::Scalar(10).L1DistanceTo(QueryResult::Scalar(7)),
                   3.0);
}

TEST(QueryResultTest, GroupedL1UnionOfKeys) {
  QueryResult a, b;
  a.grouped = b.grouped = true;
  a.groups[Value(int64_t{1})] = 5;
  a.groups[Value(int64_t{2})] = 3;
  b.groups[Value(int64_t{2})] = 1;
  b.groups[Value(int64_t{3})] = 4;
  // |5-0| + |3-1| + |0-4| = 11
  EXPECT_DOUBLE_EQ(a.L1DistanceTo(b), 11.0);
  EXPECT_DOUBLE_EQ(b.L1DistanceTo(a), 11.0);
}

TEST(QueryResultTest, EmptyGroupsZeroDistance) {
  QueryResult a, b;
  a.grouped = b.grouped = true;
  EXPECT_DOUBLE_EQ(a.L1DistanceTo(b), 0.0);
}

// -------------------------------------------------------------- Rewriter

TEST(RewriterTest, ScanGainsDummyFilter) {
  auto q = ParseSelect("SELECT COUNT(*) FROM T");
  auto rewritten = RewriteForDummies(q.value());
  ASSERT_NE(rewritten.where, nullptr);
  EXPECT_NE(rewritten.where->ToString().find("isDummy"), std::string::npos);
}

TEST(RewriterTest, ExistingWhereIsPreserved) {
  auto q = ParseSelect("SELECT COUNT(*) FROM T WHERE zone = 10");
  auto rewritten = RewriteForDummies(q.value());
  std::string s = rewritten.where->ToString();
  EXPECT_NE(s.find("zone"), std::string::npos);
  EXPECT_NE(s.find("isDummy"), std::string::npos);
}

TEST(RewriterTest, JoinFiltersBothSides) {
  auto q = ParseSelect(
      "SELECT COUNT(*) FROM A INNER JOIN B ON A.k = B.k");
  auto rewritten = RewriteForDummies(q.value());
  std::string s = rewritten.where->ToString();
  EXPECT_NE(s.find("A.isDummy"), std::string::npos);
  EXPECT_NE(s.find("B.isDummy"), std::string::npos);
}

TEST(RewriterTest, RewrittenQueryIgnoresDummies) {
  Table t = MakeTestTable();
  Catalog c;
  c.AddTable(&t);
  Executor ex(&c);
  auto q = ParseSelect("SELECT COUNT(*) FROM T");
  auto r = ex.Execute(RewriteForDummies(q.value()));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->scalar, 4.0);  // dummy row excluded
}

TEST(RewriterTest, RewrittenGroupByDropsDummyGroupContributions) {
  Table t = MakeTestTable();
  Catalog c;
  c.AddTable(&t);
  Executor ex(&c);
  auto q = ParseSelect("SELECT zone, COUNT(*) FROM T GROUP BY zone");
  auto r = ex.Execute(RewriteForDummies(q.value()));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->groups.at(Value(int64_t{20})), 1.0);  // dummy excluded
}

TEST(RewriterTest, OriginalQueryUntouched) {
  auto q = ParseSelect("SELECT COUNT(*) FROM T");
  auto copy = RewriteForDummies(q.value());
  EXPECT_EQ(q->where, nullptr);
  (void)copy;
}

// --------------------------------------------------- Plans & fingerprints

TEST(PlanTest, EquivalentSpellingsShareAFingerprint) {
  // Keyword case, redundant parens, whitespace and `<>` vs `!=` all
  // normalize away; a different constant does not.
  auto a = ParseSelect(
      "SELECT COUNT(*) FROM T WHERE a >= 3 AND (b < 7 OR NOT c = 1)");
  auto b = ParseSelect(
      "select   count(*) from T where ((a >= 3)) and (b < 7 or not (c = 1))");
  auto c = ParseSelect(
      "SELECT COUNT(*) FROM T WHERE a >= 4 AND (b < 7 OR NOT c = 1)");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(FingerprintSelect(a.value()), FingerprintSelect(b.value()));
  EXPECT_NE(FingerprintSelect(a.value()), FingerprintSelect(c.value()));
  auto ne1 = ParseSelect("SELECT COUNT(*) FROM T WHERE a != 1");
  auto ne2 = ParseSelect("SELECT COUNT(*) FROM T WHERE a <> 1");
  EXPECT_EQ(FingerprintSelect(ne1.value()), FingerprintSelect(ne2.value()));
}

Schema PlanTestSchema() {
  return Schema({{"a", ValueType::kInt},
                 {"b", ValueType::kInt},
                 {"fare", ValueType::kDouble},
                 {"isDummy", ValueType::kInt}});
}

StatusOr<std::shared_ptr<const QueryPlan>> PlanOn(const std::string& sql,
                                                  PlannerOptions opts = {}) {
  auto q = ParseSelect(sql);
  if (!q.ok()) return q.status();
  static Schema schema = PlanTestSchema();
  return PlanSelect(
      q.value(),
      [](const std::string& name) -> const Schema* {
        return (name == "T" || name == "G") ? &schema : nullptr;
      },
      opts);
}

TEST(PlanTest, BindsTablesAndRewritesDummies) {
  auto plan = PlanOn("SELECT COUNT(*) FROM T WHERE a BETWEEN 1 AND 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind, PlanKind::kScan);
  EXPECT_EQ((*plan)->table, "T");
  EXPECT_NE((*plan)->rewritten.where, nullptr);
  EXPECT_NE((*plan)->rewritten.where->ToString().find("isDummy"),
            std::string::npos);
  // The normalized half stays the analyst's query, un-rewritten.
  EXPECT_EQ((*plan)->canonical_text.find("isDummy"), std::string::npos);
}

TEST(PlanTest, UnknownTableAndStrictBindingFailAtPlanTime) {
  EXPECT_EQ(PlanOn("SELECT COUNT(*) FROM Nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(PlanOn("SELECT a, COUNT(*) FROM T GROUP BY typo")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PlanOn("SELECT SUM(typo) FROM T").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      PlanOn("SELECT COUNT(*) FROM T INNER JOIN G ON T.typo = G.a")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(PlanOn("SELECT a FROM T").status().code(),
            StatusCode::kUnimplemented);
}

TEST(PlanTest, JoinCapabilityGate) {
  PlannerOptions no_join;
  no_join.supports_join = false;
  no_join.engine_name = "Crypt-eps";
  auto plan =
      PlanOn("SELECT COUNT(*) FROM T INNER JOIN G ON T.a = G.a", no_join);
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
  EXPECT_EQ(plan.status().message(),
            "Crypt-eps does not support join operators");
  auto ok = PlanOn("SELECT COUNT(*) FROM T INNER JOIN G ON T.a = G.a");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->kind, PlanKind::kJoin);
  EXPECT_EQ((*ok)->join_table, "G");
}

// ------------------------------------- Fingerprint round-trip (property)

/// Tiny deterministic generator of parser-shaped ASTs. Literals are
/// restricted to values whose textual form round-trips (ints, halves,
/// simple strings); every structural shape the parser accepts is covered.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  SelectQuery Gen() {
    SelectQuery q;
    q.table = "T";
    bool join = Chance(4);
    if (join) {
      JoinClause j;
      j.table = "G";
      j.left_column = "T." + Column();
      j.right_column = "G." + Column();
      q.join = j;
    }
    // Optional plain columns ahead of the single aggregate.
    if (!join && Chance(3)) {
      q.items.push_back({AggFunc::kNone, Column(), MaybeAlias()});
    }
    SelectItem agg;
    agg.agg = Pick<AggFunc>({AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                             AggFunc::kMin, AggFunc::kMax});
    agg.column = (agg.agg == AggFunc::kCount && Chance(2)) ? "" : Column();
    agg.alias = MaybeAlias();
    q.items.push_back(agg);
    if (Chance(2)) q.where = GenPredicate(2);
    if (!join && Chance(3)) {
      q.group_by.push_back(Column());
      if (Chance(4)) q.group_by.push_back("T." + Column());
    }
    return q;
  }

 private:
  bool Chance(int one_in) { return rng_.UniformInt(0, one_in - 1) == 0; }

  template <typename T>
  T Pick(std::initializer_list<T> options) {
    auto it = options.begin();
    std::advance(it, rng_.UniformInt(
                         0, static_cast<int64_t>(options.size()) - 1));
    return *it;
  }

  std::string Column() {
    return Pick<std::string>({"a", "b", "fare", "zone", "pickTime"});
  }

  std::string MaybeAlias() {
    return Chance(3) ? Pick<std::string>({"x1", "total", "cnt"}) : "";
  }

  ExprPtr Operand() {
    switch (rng_.UniformInt(0, 3)) {
      case 0:
        return std::make_unique<ColumnExpr>(Column());
      case 1:
        return std::make_unique<ColumnExpr>("T." + Column());
      case 2:
        return std::make_unique<LiteralExpr>(
            Value(rng_.UniformInt(-100, 100)));
      default:
        if (Chance(3)) {
          return std::make_unique<LiteralExpr>(Value(
              Pick<std::string>({"bob", "zone4", "", "it's", "''", "a'b'c"})));
        }
        // Halves print and re-parse exactly ("12.5").
        return std::make_unique<LiteralExpr>(
            Value(static_cast<double>(rng_.UniformInt(-40, 40)) + 0.5));
    }
  }

  ExprPtr GenLeaf() {
    if (Chance(4)) {
      return std::make_unique<BetweenExpr>(Operand(), Operand(), Operand());
    }
    auto op = Pick<CmpOp>({CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                           CmpOp::kGt, CmpOp::kGe});
    return std::make_unique<CompareExpr>(op, Operand(), Operand());
  }

  ExprPtr GenPredicate(int depth) {
    if (depth == 0 || Chance(3)) return GenLeaf();
    switch (rng_.UniformInt(0, 2)) {
      case 0:
        return std::make_unique<LogicalExpr>(LogicalExpr::Op::kAnd,
                                             GenPredicate(depth - 1),
                                             GenPredicate(depth - 1));
      case 1:
        return std::make_unique<LogicalExpr>(LogicalExpr::Op::kOr,
                                             GenPredicate(depth - 1),
                                             GenPredicate(depth - 1));
      default:
        return std::make_unique<NotExpr>(GenPredicate(depth - 1));
    }
  }

  Rng rng_;
};

TEST(PlanTest, FingerprintRoundTripsThroughParserForEveryAstShape) {
  // Property: for any AST the parser accepts, re-parsing its own text
  // yields the same normalized fingerprint — the plan-cache key is stable
  // across the print/parse round trip (and the round trip itself is a
  // fixed point: text(parse(text(q))) == text(q)).
  QueryGenerator gen(20260729);
  for (int i = 0; i < 500; ++i) {
    SelectQuery q = gen.Gen();
    const std::string text = CanonicalText(q);
    auto reparsed = ParseSelect(text);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << i << ": " << reparsed.status().ToString()
        << "\n  text: " << text;
    EXPECT_EQ(FingerprintSelect(reparsed.value()), FingerprintSelect(q))
        << "iteration " << i << "\n  text:     " << text
        << "\n  reparsed: " << CanonicalText(reparsed.value());
    EXPECT_EQ(CanonicalText(reparsed.value()), text) << "iteration " << i;
  }
}

}  // namespace
}  // namespace dpsync::query
