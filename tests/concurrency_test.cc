// Concurrency tests for the Query API v2: admission-controller semantics
// (FIFO, limits, deadlines), async Submit/Wait, and a mixed-query stress
// run against one server while the owner keeps appending — the suite the
// CI TSan job leans on to prove the per-table locking discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "edb/admission.h"
#include "edb/crypte_engine.h"
#include "edb/oblidb_engine.h"
#include "query/parser.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::edb {
namespace {

using testutil::Trip;
using workload::TripSchema;

// ----------------------------------------------------- AdmissionController

TEST(AdmissionControllerTest, GrantsUpToLimitThenQueues) {
  AdmissionController ctl(AdmissionConfig{2, 8});
  ASSERT_OK(ctl.Acquire(std::nullopt));
  ASSERT_OK(ctl.Acquire(std::nullopt));
  // Third acquire must wait; give it a short deadline so the test
  // terminates without a releasing thread.
  auto s = ctl.Acquire(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(20));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  ctl.Release();
  // A slot is free again: immediate grant.
  ASSERT_OK(ctl.Acquire(std::nullopt));
  ctl.Release();
  ctl.Release();
  auto stats = ctl.stats();
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.deadlines_exceeded, 1);
  EXPECT_EQ(stats.peak_in_flight, 2);
}

TEST(AdmissionControllerTest, RejectsWhenOverflowQueueFull) {
  AdmissionController ctl(AdmissionConfig{1, 0});
  ASSERT_OK(ctl.Acquire(std::nullopt));
  auto s = ctl.Acquire(std::chrono::steady_clock::now());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  ctl.Release();
  EXPECT_EQ(ctl.stats().rejected_queue_full, 1);
}

TEST(AdmissionControllerTest, ReleaseHandsSlotToOldestWaiter) {
  AdmissionController ctl(AdmissionConfig{1, 8});
  ASSERT_OK(ctl.Acquire(std::nullopt));
  std::atomic<int> order{0};
  int first_rank = -1, second_rank = -1;
  std::thread first([&] {
    ASSERT_OK(ctl.Acquire(std::nullopt));
    first_rank = order.fetch_add(1);
    ctl.Release();
  });
  // Wait until `first` is queued before `second` joins the queue, and
  // until both are queued before the slot frees up.
  while (ctl.queue_depth() < 1) std::this_thread::yield();
  std::thread second([&] {
    ASSERT_OK(ctl.Acquire(std::nullopt));
    second_rank = order.fetch_add(1);
    ctl.Release();
  });
  while (ctl.queue_depth() < 2) std::this_thread::yield();
  ctl.Release();
  first.join();
  second.join();
  EXPECT_LT(first_rank, second_rank);  // FIFO among waiters
  EXPECT_EQ(ctl.stats().peak_in_flight, 1);
}

// -------------------------------------------------------- Session plumbing

class SessionConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObliDbConfig cfg;
    cfg.admission.max_in_flight = 2;
    cfg.admission.max_queue = 1024;
    server_ = std::make_unique<ObliDbServer>(cfg);
    auto t = server_->CreateTable("YellowCab", TripSchema());
    ASSERT_TRUE(t.ok());
    yellow_ = t.value();
    std::vector<Record> records;
    for (int64_t i = 0; i < 200; ++i) records.push_back(Trip(i, i % 40));
    ASSERT_OK(yellow_->Setup(records));
  }

  std::unique_ptr<ObliDbServer> server_;
  EdbTable* yellow_ = nullptr;
};

TEST_F(SessionConcurrencyTest, SubmitWaitMatchesSyncExecute) {
  auto session = server_->CreateSession();
  auto q = session->Prepare(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 5 AND 14");
  ASSERT_TRUE(q.ok());
  auto sync = session->Execute(q.value());
  ASSERT_TRUE(sync.ok());
  auto ticket = session->Submit(q.value());
  ASSERT_TRUE(ticket.ok());
  auto async = session->Wait(ticket.value());
  ASSERT_TRUE(async.ok());
  EXPECT_DOUBLE_EQ(async->result.scalar, sync->result.scalar);
  EXPECT_DOUBLE_EQ(async->stats.virtual_seconds, sync->stats.virtual_seconds);
  // A ticket can only be redeemed once.
  EXPECT_EQ(session->Wait(ticket.value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SessionConcurrencyTest, ExecuteManyReturnsInInputOrder) {
  auto session = server_->CreateSession();
  std::vector<PreparedQuery> batch;
  std::vector<double> expect;
  for (int lo : {0, 10, 20, 30}) {
    auto q = session->Prepare(
        "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN " +
        std::to_string(lo) + " AND " + std::to_string(lo + 9));
    ASSERT_TRUE(q.ok());
    auto r = session->Execute(q.value());
    ASSERT_TRUE(r.ok());
    expect.push_back(r->result.scalar);
    batch.push_back(std::move(q.value()));
  }
  auto responses = session->ExecuteMany(batch);
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), batch.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_DOUBLE_EQ((*responses)[i].result.scalar, expect[i]) << i;
  }
}

TEST_F(SessionConcurrencyTest, UnpreparedQueryRejected) {
  auto session = server_->CreateSession();
  PreparedQuery empty;
  EXPECT_EQ(session->Execute(empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->Submit(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SessionConcurrencyTest, AdmissionLimitEnforcedUnderFanOut) {
  auto session = server_->CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 64; ++i) {
    auto ticket = session->Submit(q.value());
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  for (const auto& ticket : tickets) {
    auto r = session->Wait(ticket);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_DOUBLE_EQ(r->result.scalar, 200.0);
  }
  auto stats = server_->stats();
  EXPECT_LE(stats.peak_in_flight, 2);
  EXPECT_GE(stats.peak_in_flight, 1);
  EXPECT_EQ(stats.queries_executed, 64);
}

// ------------------------------------------------------------- Stress runs

/// N analyst threads x mixed prepared queries (range count, group-by,
/// join) against one server while the owner keeps appending — every
/// response must be OK, and the final count must equal everything the
/// owner ever appended.
TEST(ConcurrencyStressTest, MixedQueriesAgainstConcurrentAppends) {
  ObliDbConfig cfg;
  cfg.admission.max_in_flight = 4;
  cfg.admission.max_queue = 4096;
  cfg.storage.num_shards = 4;
  ObliDbServer server(cfg);
  auto yellow = server.CreateTable("YellowCab", TripSchema());
  auto green = server.CreateTable("GreenTaxi", TripSchema());
  ASSERT_TRUE(yellow.ok());
  ASSERT_TRUE(green.ok());
  ASSERT_OK(yellow.value()->Setup({Trip(0, 1)}));
  ASSERT_OK(green.value()->Setup({Trip(0, 2)}));

  const std::vector<std::string> kQueries = {
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 1 AND 20",
      "SELECT pickupID, COUNT(*) AS c FROM YellowCab GROUP BY pickupID",
      "SELECT COUNT(*) FROM GreenTaxi",
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime",
  };

  constexpr int kAnalysts = 4;
  constexpr int kQueriesPerAnalyst = 24;
  constexpr int kOwnerBatches = 48;
  std::atomic<int> failures{0};

  std::thread owner([&] {
    for (int b = 1; b <= kOwnerBatches; ++b) {
      std::vector<Record> batch = {Trip(b, b % 40), Trip(b, (b + 7) % 40)};
      if (!yellow.value()->Update(batch).ok()) ++failures;
      if (!green.value()->Update({Trip(b, (b + 3) % 40)}).ok()) ++failures;
    }
  });

  std::vector<std::thread> analysts;
  for (int a = 0; a < kAnalysts; ++a) {
    analysts.emplace_back([&, a] {
      auto session = server.CreateSession();
      std::vector<PreparedQuery> prepared;
      for (const auto& sql : kQueries) {
        auto q = session->Prepare(sql);
        if (!q.ok()) {
          ++failures;
          return;
        }
        prepared.push_back(std::move(q.value()));
      }
      for (int i = 0; i < kQueriesPerAnalyst; ++i) {
        const auto& q = prepared[(a + i) % prepared.size()];
        if (i % 3 == 0) {
          auto ticket = session->Submit(q);
          if (!ticket.ok() || !session->Wait(ticket.value()).ok()) ++failures;
        } else {
          if (!session->Execute(q).ok()) ++failures;
        }
      }
    });
  }
  owner.join();
  for (auto& t : analysts) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent final state: the count sees every append.
  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 1.0 + 2.0 * kOwnerBatches);
  auto stats = server.stats();
  EXPECT_LE(stats.peak_in_flight, 4);
  EXPECT_EQ(stats.queries_rejected, 0);
}

/// Same discipline through the ORAM-indexed path: every scan touches the
/// per-shard trees while the owner's catch-up keeps writing them.
TEST(ConcurrencyStressTest, IndexedScansAgainstConcurrentAppends) {
  ObliDbConfig cfg;
  cfg.use_oram_index = true;
  cfg.oram_capacity = 4096;
  cfg.storage.num_shards = 4;
  cfg.admission.max_in_flight = 4;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup({Trip(0, 1)}));

  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 1; b <= 40; ++b) {
      if (!t.value()->Update({Trip(b, b % 20)}).ok()) ++failures;
    }
  });
  std::vector<std::thread> analysts;
  for (int a = 0; a < 3; ++a) {
    analysts.emplace_back([&] {
      auto session = server.CreateSession();
      auto q = session->Prepare(
          "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 0 AND 19");
      if (!q.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 12; ++i) {
        if (!session->Execute(q.value()).ok()) ++failures;
      }
    });
  }
  owner.join();
  for (auto& th : analysts) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 41.0);
  EXPECT_TRUE(server.oram_health().enabled);
}

/// Concurrent queries must never jointly overdraw the analyst budget:
/// with limit 6 and eps 3, exactly two of six parallel queries succeed.
TEST(ConcurrencyStressTest, CryptEpsBudgetNeverOverdrawnConcurrently) {
  CryptEpsConfig cfg;
  cfg.query_epsilon = 3.0;
  cfg.total_budget_limit = 6.0;
  cfg.admission.max_in_flight = 6;
  CryptEpsServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup({Trip(1, 60), Trip(2, 70)}));

  std::atomic<int> ok_count{0}, denied_count{0}, other_count{0};
  std::vector<std::thread> analysts;
  for (int a = 0; a < 6; ++a) {
    analysts.emplace_back([&] {
      auto session = server.CreateSession();
      auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
      if (!q.ok()) {
        ++other_count;
        return;
      }
      auto r = session->Execute(q.value());
      if (r.ok()) {
        ++ok_count;
      } else if (r.status().code() == StatusCode::kPermissionDenied) {
        ++denied_count;
      } else {
        ++other_count;
      }
    });
  }
  for (auto& th : analysts) th.join();
  EXPECT_EQ(ok_count.load(), 2);
  EXPECT_EQ(denied_count.load(), 4);
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_DOUBLE_EQ(server.consumed_query_budget(), 6.0);
}

}  // namespace
}  // namespace dpsync::edb
