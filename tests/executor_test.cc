// Vectorized-execution parity and edge cases: the columnar batch path
// (query/columnar.h, query/vectorized.h, Executor's TryVectorizedScan)
// must be indistinguishable from the scalar row path in every answer —
// including float aggregates, whose fixed reduction order is the whole
// bit-identity contract — while the selection bitmap, chunk straddling,
// poisoned columns and snapshot visibility behave per docs/STORAGE.md.
// The suite runs in the CI TSan job under both DPSYNC_VECTORIZED
// settings; the knob only moves which engine answers, never the answers.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "edb/encrypted_table.h"
#include "edb/snapshot.h"
#include "query/columnar.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "query/vectorized.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::query {
namespace {

using testutil::MakeRng;
using testutil::Trip;
using workload::TripSchema;

// ------------------------------------------------------------- fixtures

/// A span-backed table whose chunks carry columnar projections — the same
/// shape EncryptedTableStore::CaptureView serves, built without crypto so
/// executor cases stay fast and self-contained.
struct SpanTable {
  Table table;
  std::vector<std::vector<Row>> chunks;  ///< owns the row storage
  std::vector<std::unique_ptr<ColumnarBlock>> blocks;
};

SpanTable MakeSpanTable(const Schema& schema, const std::vector<Row>& rows,
                        size_t chunk_rows) {
  SpanTable t;
  t.table.name = "T";
  t.table.schema = schema;
  for (size_t i = 0; i < rows.size(); i += chunk_rows) {
    size_t n = std::min(chunk_rows, rows.size() - i);
    t.chunks.emplace_back(rows.begin() + static_cast<ptrdiff_t>(i),
                          rows.begin() + static_cast<ptrdiff_t>(i + n));
    auto block = std::make_unique<ColumnarBlock>(schema, chunk_rows);
    for (const auto& row : t.chunks.back()) block->Append(row);
    RowSpan span;
    span.data = t.chunks.back().data();
    span.size = n;
    span.columns = block->CaptureSpans(n);
    t.table.borrowed_spans.push_back(std::move(span));
    t.blocks.push_back(std::move(block));
  }
  return t;
}

StatusOr<QueryResult> RunSql(Table* table, const std::string& sql,
                          bool vectorized) {
  Catalog catalog;
  catalog.AddTable(table);
  Executor executor(&catalog, ExecutorOptions{vectorized});
  auto q = ParseSelect(sql);
  if (!q.ok()) return q.status();
  return executor.Execute(q.value());
}

/// Exact (==) equality: the vectorized fold reuses the scalar reduction
/// order, so even the last ulp of a double SUM must agree.
void ExpectSameResult(const QueryResult& scalar, const QueryResult& vec,
                      const std::string& sql) {
  EXPECT_EQ(scalar.grouped, vec.grouped) << sql;
  EXPECT_EQ(scalar.scalar, vec.scalar) << sql;
  ASSERT_EQ(scalar.groups.size(), vec.groups.size()) << sql;
  auto it = vec.groups.begin();
  for (const auto& [key, value] : scalar.groups) {
    EXPECT_EQ(key.Compare(it->first), 0) << sql;
    EXPECT_EQ(value, it->second) << sql << " group " << key.ToString();
    ++it;
  }
}

void ExpectParity(Table* table, const std::string& sql) {
  auto scalar = RunSql(table, sql, false);
  auto vec = RunSql(table, sql, true);
  ASSERT_OK(scalar);
  ASSERT_OK(vec);
  ExpectSameResult(scalar.value(), vec.value(), sql);
}

Schema TestSchema() {
  return Schema({{"k", ValueType::kInt},
                 {"v", ValueType::kDouble},
                 {"s", ValueType::kString},
                 {"i", ValueType::kInt}});
}

/// Random rows over TestSchema with NULLs sprinkled into every column.
std::vector<Row> RandomRows(size_t n, uint64_t salt) {
  auto rng = MakeRng(salt);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    Row row;
    row.push_back(rng.UniformInt(0, 9) == 0
                      ? Value()
                      : Value(rng.UniformInt(-50, 50)));
    row.push_back(rng.UniformInt(0, 9) == 0
                      ? Value()
                      : Value(rng.UniformDouble() * 100 - 50));
    row.push_back(rng.UniformInt(0, 9) == 0
                      ? Value()
                      : Value(std::string(1, static_cast<char>(
                                                 'a' + rng.UniformInt(0, 3)))));
    row.push_back(rng.UniformInt(0, 9) == 0
                      ? Value()
                      : Value(rng.UniformInt(0, 5000)));
    rows.push_back(std::move(row));
  }
  return rows;
}

// ------------------------------------------------- selection bitmap edges

TEST(VectorizedScanTest, EmptySelection) {
  auto t = MakeSpanTable(TestSchema(), RandomRows(500, 1), 128);
  // No row has k beyond the generator's range: the bitmap is all zeros in
  // every tile and the accumulator must fold nothing.
  for (const char* sql :
       {"SELECT COUNT(*) FROM T WHERE k > 1000",
        "SELECT SUM(v) FROM T WHERE k > 1000",
        "SELECT AVG(v) FROM T WHERE k > 1000",
        "SELECT MIN(v) FROM T WHERE k > 1000",
        "SELECT k, COUNT(*) FROM T WHERE k > 1000 GROUP BY k"}) {
    ExpectParity(&t.table, sql);
  }
}

TEST(VectorizedScanTest, AllSelected) {
  auto t = MakeSpanTable(TestSchema(), RandomRows(500, 2), 128);
  for (const char* sql :
       {"SELECT COUNT(*) FROM T", "SELECT COUNT(v) FROM T",
        "SELECT SUM(v) FROM T", "SELECT AVG(v) FROM T",
        "SELECT MIN(v) FROM T", "SELECT MAX(v) FROM T",
        "SELECT SUM(k) FROM T",
        "SELECT SUM(v) FROM T WHERE k >= -1000"}) {
    ExpectParity(&t.table, sql);
  }
}

TEST(VectorizedScanTest, ChunkBoundaryStraddle) {
  // Chunks much smaller than the 2048-row evaluation tile AND a predicate
  // whose matches straddle every chunk edge: per-span bitmap offsets must
  // line up with the row-major storage exactly.
  auto t = MakeSpanTable(TestSchema(), RandomRows(1000, 3), 96);
  ASSERT_GT(t.table.borrowed_spans.size(), 8u);
  for (const char* sql :
       {"SELECT SUM(v) FROM T WHERE k BETWEEN -25 AND 25",
        "SELECT COUNT(*) FROM T WHERE k <= 0 OR v > 10.5",
        "SELECT i, SUM(v) FROM T WHERE NOT k < 0 GROUP BY i"}) {
    ExpectParity(&t.table, sql);
  }
}

TEST(VectorizedScanTest, ParallelThresholdCrossed) {
  // >8192 rows engages the multi-chunk ParallelFor split in both engines;
  // the partial-merge order (pool-chunk index order) must keep double
  // sums bit-identical.
  auto t = MakeSpanTable(TestSchema(), RandomRows(10000, 4), 4096);
  for (const char* sql :
       {"SELECT SUM(v) FROM T", "SELECT AVG(v) FROM T",
        "SELECT SUM(v) FROM T WHERE v >= 0.0",
        "SELECT i, COUNT(*) FROM T GROUP BY i",
        "SELECT i, SUM(v) FROM T WHERE k <> 7 GROUP BY i"}) {
    ExpectParity(&t.table, sql);
  }
}

// --------------------------------------------------- predicate semantics

TEST(VectorizedScanTest, PredicateOperatorCoverage) {
  auto t = MakeSpanTable(TestSchema(), RandomRows(700, 5), 256);
  for (const char* sql : {
           "SELECT COUNT(*) FROM T WHERE k = 3",
           "SELECT COUNT(*) FROM T WHERE k != 3",
           "SELECT COUNT(*) FROM T WHERE k < 3",
           "SELECT COUNT(*) FROM T WHERE k <= 3",
           "SELECT COUNT(*) FROM T WHERE k > 3",
           "SELECT COUNT(*) FROM T WHERE k >= 3",
           "SELECT COUNT(*) FROM T WHERE 3 < k",
           "SELECT COUNT(*) FROM T WHERE v = 0.5",
           "SELECT COUNT(*) FROM T WHERE v >= 12.25",
           "SELECT COUNT(*) FROM T WHERE s = 'b'",
           "SELECT COUNT(*) FROM T WHERE s >= 'c'",
           "SELECT COUNT(*) FROM T WHERE k BETWEEN 0 AND 10",
           "SELECT COUNT(*) FROM T WHERE k >= 0 AND v < 25.0",
           "SELECT COUNT(*) FROM T WHERE k < -40 OR k > 40",
           "SELECT COUNT(*) FROM T WHERE NOT (k >= 0 AND k <= 10)",
           // int column vs double literal: the kCmpDouble lowering
           "SELECT COUNT(*) FROM T WHERE k < 3.5",
           // string column vs number literal: row-independent kCmpFixed
           "SELECT COUNT(*) FROM T WHERE s > 5",
           // unknown column: NULL in scalar eval, kConstFalse vectorized
           "SELECT COUNT(*) FROM T WHERE nope = 1",
       }) {
    ExpectParity(&t.table, sql);
  }
}

// ------------------------------------------------------------- group-by

TEST(VectorizedScanTest, HashGroupByMatchesScalarWithNullKeys) {
  // ~5000 distinct keys force several FlatGroupMap rehashes; NULL keys
  // land in the dedicated slot and must come back as the scalar path's
  // NULL group.
  auto t = MakeSpanTable(TestSchema(), RandomRows(8000, 6), 1024);
  for (const char* sql :
       {"SELECT i, COUNT(*) FROM T GROUP BY i",
        "SELECT i, COUNT(v) FROM T GROUP BY i",
        "SELECT i, SUM(v) FROM T GROUP BY i",
        "SELECT i, AVG(v) FROM T GROUP BY i",
        "SELECT i, MAX(v) FROM T WHERE k >= 0 GROUP BY i",
        "SELECT k, SUM(i) FROM T GROUP BY k"}) {
    ExpectParity(&t.table, sql);
  }
}

TEST(FlatGroupMapTest, GrowthMatchesReferenceMap) {
  FlatGroupMap<int64_t> map(int64_t{0});
  std::map<int64_t, int64_t> reference;
  auto rng = MakeRng(7);
  for (int i = 0; i < 20000; ++i) {
    int64_t key = rng.UniformInt(-4000, 4000);
    map.Upsert(key) += 1;
    reference[key] += 1;
  }
  EXPECT_EQ(map.size(), reference.size());
  EXPECT_FALSE(map.has_null());
  std::map<int64_t, int64_t> collected;
  map.ForEach([&](int64_t key, const int64_t& count) {
    collected[key] = count;
  });
  EXPECT_EQ(collected, reference);
  map.NullSlot() += 5;
  EXPECT_TRUE(map.has_null());
  EXPECT_EQ(map.null_slot(), 5);
}

// ------------------------------------------------ poisoning / fallback

TEST(ColumnarBlockTest, PoisonFreezesTypedPrefix) {
  Schema schema({{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  ColumnarBlock block(schema, 8);
  block.Append({Value(int64_t{1}), Value(1.5)});
  block.Append({Value(int64_t{2}), Value()});  // NULL keeps the type
  block.Append({Value(std::string("x")), Value(2.5)});  // poisons "a"
  block.Append({Value(int64_t{4}), Value(3.5)});

  // Captures inside the typed prefix stay typed; reaching the poisoned
  // row reports the column untyped. "b" is typed throughout.
  auto pre = block.CaptureSpans(2);
  ASSERT_EQ(pre.size(), 2u);
  EXPECT_EQ(pre[0].type, ValueType::kInt);
  EXPECT_EQ(pre[0].ints[1], 2);
  EXPECT_EQ(pre[0].nulls[1], 0);
  EXPECT_EQ(pre[1].type, ValueType::kDouble);
  EXPECT_EQ(pre[1].nulls[1], 1);  // row 1's "b" cell was the NULL

  auto post = block.CaptureSpans(4);
  EXPECT_EQ(post[0].type, ValueType::kNull);
  EXPECT_EQ(post[1].type, ValueType::kDouble);
  EXPECT_EQ(post[1].doubles[3], 3.5);
}

TEST(VectorizedScanTest, PoisonedColumnFallsBackToScalar) {
  // One chunk stores a string where the schema says int: its "k"
  // projection is untyped, the vectorized scan declines (eligibility is
  // all-or-nothing across spans), and the scalar path answers — still
  // identically to a pure scalar run.
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kDouble}});
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back({Value(int64_t{i % 7}), Value(i * 0.25)});
  }
  rows[150][0] = Value(std::string("oops"));
  auto t = MakeSpanTable(schema, rows, 100);
  EXPECT_EQ(t.table.borrowed_spans[1].columns[0].type, ValueType::kNull);
  EXPECT_EQ(t.table.borrowed_spans[0].columns[0].type, ValueType::kInt);
  for (const char* sql :
       {"SELECT SUM(v) FROM T WHERE k >= 2",
        "SELECT COUNT(*) FROM T WHERE k = 3",
        "SELECT k, SUM(v) FROM T GROUP BY k"}) {
    ExpectParity(&t.table, sql);
  }
}

// ------------------------------------------------- plan classification

TEST(PlanVectorizableTest, ShapeGate) {
  Schema schema = TestSchema();
  auto vectorizable = [&](const std::string& sql) {
    auto q = ParseSelect(sql);
    EXPECT_OK(q);
    return ExprIsVectorizable(q->where.get());
  };
  EXPECT_TRUE(vectorizable("SELECT COUNT(*) FROM T"));
  EXPECT_TRUE(vectorizable("SELECT COUNT(*) FROM T WHERE k BETWEEN 1 AND 2"));
  EXPECT_TRUE(vectorizable(
      "SELECT COUNT(*) FROM T WHERE NOT (k = 1 OR v > 2.0) AND s = 'x'"));
  // Column-vs-column comparisons have no literal side to lower.
  EXPECT_FALSE(vectorizable("SELECT COUNT(*) FROM T WHERE k = i"));

  auto pred = VectorPredicate::Compile(nullptr, schema);
  ASSERT_TRUE(pred.has_value());
  EXPECT_TRUE(pred->columns().empty());
}

// --------------------------------------- snapshot visibility (edb layer)

TEST(VectorizedScanTest, UncommittedTailInvisibleUnderSnapshots) {
  // The columnar mirror shares the row mirror's commit discipline: spans
  // captured from a Snapshot() bound both representations to the
  // committed prefix, so the vectorized fold cannot see unflushed
  // appends the scalar path would also skip.
  edb::StorageConfig cfg;
  cfg.flush_every_update = false;
  edb::EncryptedTableStore store("YellowCab", TripSchema(), Bytes(32, 1),
                                 cfg);
  std::vector<Record> committed;
  for (int i = 0; i < 600; ++i) committed.push_back(Trip(i, i % 11));
  ASSERT_OK(store.Setup(committed));
  ASSERT_OK(store.Flush());
  // Unflushed tail: visible to the locked full view, not to snapshots.
  ASSERT_OK(store.Update({Trip(1000, 3), Trip(1001, 3), Trip(1002, 3)}));

  auto run = [&](const edb::SnapshotView& view, const std::string& sql,
                 bool vectorized) {
    Table plain;
    plain.name = store.table_name();
    plain.schema = store.schema();
    plain.borrowed_spans = view.spans;
    return RunSql(&plain, sql, vectorized);
  };

  std::lock_guard<std::mutex> lk(store.table_mutex());
  auto snap = store.Snapshot();
  ASSERT_OK(snap);
  auto full = store.EnclaveView();
  ASSERT_OK(full);
  EXPECT_EQ(snap->total_rows, 600);
  EXPECT_EQ(full->total_rows, 603);

  const std::string count = "SELECT COUNT(*) FROM YellowCab";
  const std::string sum =
      "SELECT SUM(fare) FROM YellowCab WHERE pickupID = 3";
  for (const auto& sql : {count, sum}) {
    auto snap_scalar = run(*snap, sql, false);
    auto snap_vec = run(*snap, sql, true);
    auto full_scalar = run(*full, sql, false);
    auto full_vec = run(*full, sql, true);
    ASSERT_OK(snap_scalar);
    ASSERT_OK(snap_vec);
    ASSERT_OK(full_scalar);
    ASSERT_OK(full_vec);
    ExpectSameResult(snap_scalar.value(), snap_vec.value(), sql);
    ExpectSameResult(full_scalar.value(), full_vec.value(), sql);
  }
  EXPECT_EQ(run(*snap, count, true).value().scalar, 600);
  EXPECT_EQ(run(*full, count, true).value().scalar, 603);
  // The tail rows land in zone 3, so the filtered sum moves too — on
  // both engines equally.
  EXPECT_LT(run(*snap, sum, true).value().scalar,
            run(*full, sum, true).value().scalar);
}

}  // namespace
}  // namespace dpsync::query
