// Tests for shard replication and failover (src/dist/ + src/net/ fault
// injection): a killed leader must promote a caught-up follower at a
// tagged commit-epoch boundary and keep every answer — including grouped
// maps, records_scanned, the virtual QET and the Crypt-eps Laplace noise
// stream — bit-identical to the single-process engines; commit-relative
// death points (kill-before-handle vs kill-after-commit) must neither
// lose nor duplicate ingest batches; a lagging follower must be refused
// promotion until catch-up repairs it; and a double failure must yield a
// typed Unavailable naming the rank. Every fault placement derives from
// DPSYNC_FAULT_SEED (the CI matrix runs {1,2,3}) through seeded
// FaultPlans — no sleeps, no wall-clock synchronization.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/shard_server.h"
#include "edb/crypte_engine.h"
#include "edb/oblidb_engine.h"
#include "net/messages.h"
#include "net/socket.h"
#include "query/parser.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::dist {
namespace {

using workload::TripSchema;

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Bit-level equality of two responses (same contract as dist_test.cc:
/// doubles by bit pattern, so any merge-order drift after a cutover
/// fails loudly).
void ExpectBitIdentical(const edb::QueryResponse& dist,
                        const edb::QueryResponse& local) {
  EXPECT_EQ(dist.result.grouped, local.result.grouped);
  EXPECT_EQ(BitsOf(dist.result.scalar), BitsOf(local.result.scalar));
  ASSERT_EQ(dist.result.groups.size(), local.result.groups.size());
  auto it = local.result.groups.begin();
  for (const auto& [key, value] : dist.result.groups) {
    EXPECT_TRUE(key == it->first)
        << key.ToString() << " vs " << it->first.ToString();
    EXPECT_EQ(BitsOf(value), BitsOf(it->second));
    ++it;
  }
  EXPECT_EQ(dist.stats.records_scanned, local.stats.records_scanned);
  EXPECT_EQ(BitsOf(dist.stats.virtual_seconds),
            BitsOf(local.stats.virtual_seconds));
  EXPECT_EQ(dist.stats.oram_paths, local.stats.oram_paths);
  EXPECT_EQ(dist.stats.oram_buckets, local.stats.oram_buckets);
  EXPECT_EQ(BitsOf(dist.stats.oram_virtual_seconds),
            BitsOf(local.stats.oram_virtual_seconds));
  EXPECT_EQ(dist.stats.revealed_volume, local.stats.revealed_volume);
}

Record FareTrip(int64_t t, int64_t zone, double fare, bool dummy = false) {
  workload::TripRecord trip;
  trip.pick_time = t;
  trip.pickup_id = zone;
  trip.dropoff_id = zone;
  trip.trip_distance = 0.25 * static_cast<double>(t % 7);
  trip.fare = fare;
  trip.is_dummy = dummy;
  return trip.ToRecord();
}

std::vector<Record> MakeBatch(int64_t lo, int64_t hi) {
  std::vector<Record> batch;
  for (int64_t t = lo; t < hi; ++t) {
    // Non-dyadic fares keep SUM/AVG order-sensitive (see dist_test.cc):
    // a cutover that perturbed the span-aligned merge tree would flip
    // low-order bits and fail the identity checks.
    batch.push_back(FareTrip(t, 10 + (t % 5) * 10, 2.5 + 0.1 * (t % 11),
                             /*dummy=*/t % 9 == 0));
  }
  return batch;
}

const std::vector<std::string>& QuerySuite() {
  static const std::vector<std::string> kQueries = {
      "SELECT COUNT(*) FROM YellowCab",
      "SELECT SUM(fare) FROM YellowCab WHERE pickupID BETWEEN 20 AND 40",
      "SELECT AVG(fare) FROM YellowCab WHERE pickTime >= 12",
      "SELECT pickupID, COUNT(*) FROM YellowCab GROUP BY pickupID",
      "SELECT pickupID, SUM(fare) FROM YellowCab GROUP BY pickupID",
  };
  return kQueries;
}

struct Variant {
  const char* label;
  DistEngineKind engine;
  bool use_oram_index;
};

constexpr Variant kVariants[] = {
    {"oblidb-linear", DistEngineKind::kObliDb, false},
    {"oblidb-indexed", DistEngineKind::kObliDb, true},
    {"crypteps", DistEngineKind::kCryptEps, false},
};

constexpr int kGlobalShards = 6;

/// The CI fault-placement seed: which matching frame each injected fault
/// strikes. Tests pin every other degree of freedom, so one seed value is
/// one fully deterministic execution.
int64_t FaultSeed() {
  const char* env = std::getenv("DPSYNC_FAULT_SEED");
  if (env == nullptr) return 1;
  const long v = std::atol(env);
  return v >= 1 ? v : 1;
}

DistributedConfig MakeReplicatedConfig(const Variant& v, int servers,
                                       int replicas) {
  DistributedConfig cfg;
  cfg.engine = v.engine;
  cfg.num_servers = servers;
  cfg.replication_factor = replicas;
  cfg.rpc_timeout_seconds = 10.0;
  cfg.oblidb.storage.num_shards = kGlobalShards;
  cfg.oblidb.use_oram_index = v.use_oram_index;
  cfg.oblidb.oram_capacity = 1 << 10;
  cfg.crypteps.storage.num_shards = kGlobalShards;
  return cfg;
}

std::unique_ptr<edb::EdbServer> MakeLocalTwin(const Variant& v) {
  if (v.engine == DistEngineKind::kCryptEps) {
    edb::CryptEpsConfig cfg;
    cfg.storage.num_shards = kGlobalShards;
    cfg.materialized_views = false;
    return std::make_unique<edb::CryptEpsServer>(cfg);
  }
  edb::ObliDbConfig cfg;
  cfg.storage.num_shards = kGlobalShards;
  cfg.use_oram_index = v.use_oram_index;
  cfg.oram_capacity = 1 << 10;
  cfg.materialized_views = false;
  return std::make_unique<edb::ObliDbServer>(cfg);
}

// --------------------------------------------- kill-leader bit identity

/// One leader dies mid-query-suite (at the seed-th Execute frame it
/// receives); the coordinator must promote its follower and finish the
/// whole suite bit-identical to the single-process twin — for Crypt-eps
/// that includes the Laplace noise stream, which only lines up if the
/// cutover preserved the exact query order and merge shape.
void RunFailoverIdentitySweep(const Variant& v) {
  SCOPED_TRACE(std::string(v.label) + " seed " + std::to_string(FaultSeed()));
  DistributedEdbServer dist(MakeReplicatedConfig(v, 2, 1));
  ASSERT_OK(dist.init_status());
  auto local = MakeLocalTwin(v);

  auto dist_table = dist.CreateTable("YellowCab", TripSchema());
  auto local_table = local->CreateTable("YellowCab", TripSchema());
  ASSERT_OK(dist_table);
  ASSERT_OK(local_table);
  ASSERT_OK(dist_table.value()->Setup(MakeBatch(0, 40)));
  ASSERT_OK(local_table.value()->Setup(MakeBatch(0, 40)));
  for (int64_t t = 40; t < 64; t += 8) {
    ASSERT_OK(dist_table.value()->Update(MakeBatch(t, t + 8)));
    ASSERT_OK(local_table.value()->Update(MakeBatch(t, t + 8)));
  }

  // The followers were fed purely by relays; before any fault they must
  // already sit at the leader's position (warm standby, not cold).
  for (int rank : {0, 1}) {
    EXPECT_TRUE(dist.ShardServerForTest(rank, 1)->is_follower());
    EXPECT_EQ(dist.ShardServerForTest(rank, 1)->applied_seq("YellowCab"),
              dist.ShardServerForTest(rank, 0)->applied_seq("YellowCab"));
  }

  // Rank 1's leader dies before handling the seed-th Execute frame. The
  // suite has 5 queries, so seeds 1..5 move the death point across it.
  net::FaultPlan plan;
  plan.rules.push_back({(FaultSeed() - 1) % 5 + 1,
                        net::FaultAction::kKillBeforeHandle,
                        static_cast<uint8_t>(net::MsgKind::kExecute), 0, 0});
  dist.ShardServerForTest(1, 0)->InjectServeFaults(plan);

  for (const auto& sql : QuerySuite()) {
    SCOPED_TRACE(sql);
    auto q = query::ParseSelect(sql);
    ASSERT_OK(q);
    auto dist_resp = dist.Query(q.value());
    auto local_resp = local->Query(q.value());
    ASSERT_OK(dist_resp);
    ASSERT_OK(local_resp);
    ExpectBitIdentical(dist_resp.value(), local_resp.value());
  }
  if (v.engine == DistEngineKind::kCryptEps) {
    auto* crypteps = static_cast<edb::CryptEpsServer*>(local.get());
    EXPECT_EQ(dist.consumed_query_budget(), crypteps->consumed_query_budget());
  }

  // Exactly one cutover happened, and the promoted follower now leads.
  EXPECT_EQ(dist.stats().failovers, 1);
  EXPECT_FALSE(dist.ShardServerForTest(1, 1)->is_follower());
  EXPECT_GT(dist.bytes_replicated(), 0);
  EXPECT_EQ(dist.replica_lag_batches(), 0);

  // Post-cutover owner traffic keeps working through the new leader...
  ASSERT_OK(dist_table.value()->Update(MakeBatch(64, 72)));
  ASSERT_OK(local_table.value()->Update(MakeBatch(64, 72)));
  // ...and answers stay identical.
  auto q = query::ParseSelect("SELECT SUM(fare) FROM YellowCab");
  ASSERT_OK(q);
  auto a = dist.Query(q.value());
  auto b = local->Query(q.value());
  ASSERT_OK(a);
  ASSERT_OK(b);
  ExpectBitIdentical(a.value(), b.value());
}

TEST(FailoverIdentityTest, KilledLeaderPromotesFollowerBitIdentically) {
  for (const auto& v : kVariants) RunFailoverIdentitySweep(v);
}

// ------------------------------------- commit-relative ingest death points

/// The exactly-once argument, probed at both death points: the leader
/// dies either BEFORE committing the seed-th ingest batch or AFTER
/// committing it but before the ack. Either way the coordinator's retry
/// against the promoted follower must land the batch exactly once — no
/// lost rows, no duplicates — because relays are sent only after the
/// leader's ack (the follower is never ahead) and the batch sequence
/// number dedups the replay.
void RunIngestDeathPoint(net::FaultAction action) {
  const Variant v{"oblidb-linear", DistEngineKind::kObliDb, false};
  DistributedEdbServer dist(MakeReplicatedConfig(v, 1, 1));
  ASSERT_OK(dist.init_status());
  auto local = MakeLocalTwin(v);
  auto dist_table = dist.CreateTable("YellowCab", TripSchema());
  auto local_table = local->CreateTable("YellowCab", TripSchema());
  ASSERT_OK(dist_table);
  ASSERT_OK(local_table);

  // Single rank: every batch ships to rank 0, so ingest frame counts are
  // exact. Setup is ingest #1; the fault strikes update #seed (2..4).
  const int64_t nth = 1 + (FaultSeed() - 1) % 3 + 1;
  net::FaultPlan plan;
  plan.rules.push_back({nth, action,
                        static_cast<uint8_t>(net::MsgKind::kIngest), 0, 0});
  dist.ShardServerForTest(0, 0)->InjectServeFaults(plan);

  ASSERT_OK(dist_table.value()->Setup(MakeBatch(0, 24)));
  ASSERT_OK(local_table.value()->Setup(MakeBatch(0, 24)));
  for (int64_t t = 24; t < 56; t += 8) {
    ASSERT_OK(dist_table.value()->Update(MakeBatch(t, t + 8)));
    ASSERT_OK(local_table.value()->Update(MakeBatch(t, t + 8)));
  }

  // The killed leader stopped at the death point: one batch short of the
  // total with the request unread, at the faulted batch with the ack lost.
  const uint64_t total_batches = 5;  // setup + 4 updates
  EXPECT_EQ(dist.stats().failovers, 1);
  EXPECT_EQ(dist.ShardServerForTest(0, 0)->applied_seq("YellowCab"),
            action == net::FaultAction::kKillAfterHandle
                ? static_cast<uint64_t>(nth)
                : static_cast<uint64_t>(nth - 1));
  // The promoted follower holds every batch exactly once.
  EXPECT_FALSE(dist.ShardServerForTest(0, 1)->is_follower());
  EXPECT_EQ(dist.ShardServerForTest(0, 1)->applied_seq("YellowCab"),
            total_batches);
  EXPECT_EQ(dist.total_outsourced_records(), local->total_outsourced_records());

  for (const auto& sql : QuerySuite()) {
    SCOPED_TRACE(sql);
    auto q = query::ParseSelect(sql);
    ASSERT_OK(q);
    auto a = dist.Query(q.value());
    auto b = local->Query(q.value());
    ASSERT_OK(a);
    ASSERT_OK(b);
    ExpectBitIdentical(a.value(), b.value());
  }
}

TEST(FailoverIngestTest, KillBeforeAckLosesNothing) {
  RunIngestDeathPoint(net::FaultAction::kKillBeforeHandle);
}

TEST(FailoverIngestTest, KillAfterCommitDuplicatesNothing) {
  RunIngestDeathPoint(net::FaultAction::kKillAfterHandle);
}

// ------------------------------------------------ follower lag + catch-up

TEST(FailoverLagTest, DroppedRelayIsRepairedByCatchUp) {
  const Variant v{"oblidb-linear", DistEngineKind::kObliDb, false};
  DistributedEdbServer dist(MakeReplicatedConfig(v, 1, 1));
  ASSERT_OK(dist.init_status());
  auto local = MakeLocalTwin(v);
  auto dist_table = dist.CreateTable("YellowCab", TripSchema());
  auto local_table = local->CreateTable("YellowCab", TripSchema());
  ASSERT_OK(dist_table);
  ASSERT_OK(local_table);

  // Drop the seed-th relay on the coordinator->follower channel. Every
  // later relay then gap-fails on the follower (it refuses to apply batch
  // n+1 over a hole), so the follower is stuck until catch-up.
  net::FaultPlan plan;
  plan.rules.push_back({(FaultSeed() - 1) % 3 + 1,
                        net::FaultAction::kDropRequest,
                        static_cast<uint8_t>(net::MsgKind::kReplicate), 0, 0});
  ASSERT_OK(dist.InjectChannelFaults(0, 1, plan));

  ASSERT_OK(dist_table.value()->Setup(MakeBatch(0, 24)));
  ASSERT_OK(local_table.value()->Setup(MakeBatch(0, 24)));
  for (int64_t t = 24; t < 48; t += 8) {
    ASSERT_OK(dist_table.value()->Update(MakeBatch(t, t + 8)));
    ASSERT_OK(local_table.value()->Update(MakeBatch(t, t + 8)));
  }

  const uint64_t total_batches = 4;  // setup + 3 updates
  EXPECT_GE(dist.replica_lag_batches(), 1);
  EXPECT_LT(dist.ShardServerForTest(0, 1)->applied_seq("YellowCab"),
            total_batches);

  // Catch-up exports the leader's committed spans past the follower's
  // rows and replays them with base-row verification.
  const int64_t lag_before_repair = dist.replica_lag_batches();
  ASSERT_OK(dist.CatchUpReplicas());
  EXPECT_EQ(dist.ShardServerForTest(0, 1)->applied_seq("YellowCab"),
            total_batches);
  // Idempotent: a second pass finds nothing to ship.
  const int64_t replicated_after_repair = dist.bytes_replicated();
  ASSERT_OK(dist.CatchUpReplicas());
  EXPECT_EQ(dist.bytes_replicated(), replicated_after_repair);
  EXPECT_EQ(dist.replica_lag_batches(), lag_before_repair);

  // The repaired follower is now promotable, and serves identical answers.
  ASSERT_OK(dist.KillServer(0));
  for (const auto& sql : QuerySuite()) {
    SCOPED_TRACE(sql);
    auto q = query::ParseSelect(sql);
    ASSERT_OK(q);
    auto a = dist.Query(q.value());
    auto b = local->Query(q.value());
    ASSERT_OK(a);
    ASSERT_OK(b);
    ExpectBitIdentical(a.value(), b.value());
  }
  EXPECT_EQ(dist.stats().failovers, 1);
}

TEST(FailoverLagTest, StaleFollowerIsRefusedPromotion) {
  const Variant v{"oblidb-linear", DistEngineKind::kObliDb, false};
  DistributedEdbServer dist(MakeReplicatedConfig(v, 1, 1));
  ASSERT_OK(dist.init_status());
  auto table = dist.CreateTable("YellowCab", TripSchema());
  ASSERT_OK(table);

  // Lose the first relay and never repair it: the follower misses a
  // committed batch, so promoting it would silently drop rows — the
  // cutover must refuse and surface a typed Unavailable instead.
  net::FaultPlan plan;
  plan.rules.push_back({1, net::FaultAction::kDropRequest,
                        static_cast<uint8_t>(net::MsgKind::kReplicate), 0, 0});
  ASSERT_OK(dist.InjectChannelFaults(0, 1, plan));
  ASSERT_OK(table.value()->Setup(MakeBatch(0, 16)));
  ASSERT_OK(table.value()->Update(MakeBatch(16, 24)));

  ASSERT_OK(dist.KillServer(0));
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_OK(q);
  auto resp = dist.Query(q.value());
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(resp.status().message().find("shard server 0"), std::string::npos)
      << resp.status().ToString();
  EXPECT_NE(resp.status().message().find("no follower could be promoted"),
            std::string::npos)
      << resp.status().ToString();
  EXPECT_EQ(dist.stats().failovers, 0);
}

// ------------------------------------------------------- double failure

TEST(FailoverDoubleFailureTest, LeaderAndFollowerDeadYieldsUnavailable) {
  const Variant v{"oblidb-linear", DistEngineKind::kObliDb, false};
  DistributedConfig cfg = MakeReplicatedConfig(v, 2, 1);
  cfg.rpc_timeout_seconds = 2.0;
  DistributedEdbServer dist(cfg);
  ASSERT_OK(dist.init_status());
  auto table = dist.CreateTable("YellowCab", TripSchema());
  ASSERT_OK(table);
  ASSERT_OK(table.value()->Setup(MakeBatch(0, 24)));

  EXPECT_EQ(dist.KillFollower(0, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(dist.KillFollower(0, 7).code(), StatusCode::kOutOfRange);
  ASSERT_OK(dist.KillFollower(0, 1));
  ASSERT_OK(dist.KillServer(0));

  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_OK(q);
  auto resp = dist.Query(q.value());
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(resp.status().message().find("shard server 0"), std::string::npos)
      << resp.status().ToString();
  EXPECT_EQ(dist.stats().failovers, 0);

  // The healthy rank 1 group is untouched by rank 0's collapse.
  EXPECT_TRUE(dist.ShardServerForTest(1, 1)->is_follower());
}

// ----------------------------------------- torn / corrupted frame cutover

TEST(FailoverTransportTest, TornAndCorruptFramesTriggerCleanCutover) {
  // A truncated frame and a corrupted CRC both kill the connection
  // mid-RPC; each must cut over to the follower and complete the query.
  const std::vector<net::FaultAction> kTearDowns = {
      net::FaultAction::kTruncateFrame, net::FaultAction::kCorruptCrc,
      net::FaultAction::kCloseAfterSend};
  for (auto action : kTearDowns) {
    SCOPED_TRACE(static_cast<int>(action));
    const Variant v{"oblidb-linear", DistEngineKind::kObliDb, false};
    DistributedEdbServer dist(MakeReplicatedConfig(v, 1, 1));
    ASSERT_OK(dist.init_status());
    auto local = MakeLocalTwin(v);
    auto dist_table = dist.CreateTable("YellowCab", TripSchema());
    auto local_table = local->CreateTable("YellowCab", TripSchema());
    ASSERT_OK(dist_table);
    ASSERT_OK(local_table);
    ASSERT_OK(dist_table.value()->Setup(MakeBatch(0, 24)));
    ASSERT_OK(local_table.value()->Setup(MakeBatch(0, 24)));

    net::FaultPlan plan;
    plan.rules.push_back({1, action,
                          static_cast<uint8_t>(net::MsgKind::kExecute), 0,
                          /*truncate_at=*/6});
    ASSERT_OK(dist.InjectChannelFaults(0, 0, plan));

    auto q = query::ParseSelect("SELECT SUM(fare) FROM YellowCab");
    ASSERT_OK(q);
    auto a = dist.Query(q.value());
    auto b = local->Query(q.value());
    ASSERT_OK(a);
    ASSERT_OK(b);
    ExpectBitIdentical(a.value(), b.value());
    EXPECT_EQ(dist.stats().failovers, 1);
  }
}

// ------------------------------------------- warm ORAM mirror on cutover

TEST(FailoverOramTest, PromotionReusesWarmMirrorWithoutRebuild) {
  // Indexed mode: the follower's per-shard ORAM mirrors were maintained
  // incrementally by every relayed batch (the same CatchUpMirror path the
  // owner uses), so promotion must NOT rebuild the trees — the promotion
  // query costs exactly as many path accesses as any steady-state scan.
  const Variant v{"oblidb-indexed", DistEngineKind::kObliDb, true};
  DistributedEdbServer dist(MakeReplicatedConfig(v, 1, 1));
  ASSERT_OK(dist.init_status());
  auto table = dist.CreateTable("YellowCab", TripSchema());
  ASSERT_OK(table);
  ASSERT_OK(table.value()->Setup(MakeBatch(0, 32)));
  ASSERT_OK(table.value()->Update(MakeBatch(32, 48)));

  auto* follower_table =
      dist.ShardServerForTest(0, 1)->TableForTest("YellowCab");
  ASSERT_NE(follower_table, nullptr);
  ASSERT_NE(follower_table->mirror(), nullptr);
  const auto warm = follower_table->mirror()->StashStats();
  // Every relayed row is already mirrored before any failure happens.
  EXPECT_EQ(warm.live_blocks, 48u);

  ASSERT_OK(dist.KillServer(0));
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_OK(q);
  ASSERT_OK(dist.Query(q.value()));  // promotion happens inside this query
  const auto after_promotion = follower_table->mirror()->StashStats();
  ASSERT_OK(dist.Query(q.value()));  // steady-state reference scan
  const auto after_steady = follower_table->mirror()->StashStats();

  EXPECT_EQ(dist.stats().failovers, 1);
  // No rebuild: block population is untouched, and the promotion query's
  // path-access bill equals the steady-state query's exactly.
  EXPECT_EQ(after_promotion.live_blocks, warm.live_blocks);
  EXPECT_EQ(after_promotion.access_count - warm.access_count,
            after_steady.access_count - after_promotion.access_count);
}

// --------------------------------------------- follower protocol gating

TEST(FailoverProtocolTest, FollowerRejectsOwnerIngestUntilPromoted) {
  // Drive one follower directly over a socketpair: owner-facing kIngest
  // must bounce with FailedPrecondition while sequenced kReplicate applies
  // and kPromote at the verified position flips the role.
  ShardServerConfig cfg;
  cfg.rank = 0;
  cfg.storage.num_shards = 2;
  cfg.follower = true;
  EdbShardServer server(cfg);
  auto fds = net::SocketPair();
  ASSERT_OK(fds);
  ASSERT_OK(server.Serve(fds.value().a));
  net::Channel channel(fds.value().b, /*timeout_seconds=*/10.0);

  auto call_status = [&](const StatusOr<Bytes>& encoded) {
    EXPECT_OK(encoded);
    auto reply = channel.Call(encoded.value());
    EXPECT_OK(reply);
    auto status = net::WireStatus::Decode(reply.value());
    EXPECT_OK(status);
    return status.value().ToStatus();
  };

  net::WireCreateTable create;
  create.table = "T";
  create.fields = TripSchema().fields();
  ASSERT_OK(call_status(create.Encode()));

  net::WireIngest ingest;
  ingest.table = "T";
  ingest.setup_batch = true;
  ingest.batch_seq = 1;
  auto rejected = call_status(ingest.Encode());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.message().find("read-only follower"), std::string::npos);

  net::WireReplicate relay;
  relay.table = "T";
  relay.setup_batch = true;
  relay.batch_seq = 1;
  ASSERT_OK(call_status(relay.Encode()));
  EXPECT_EQ(server.applied_seq("T"), 1u);
  // Replayed relays dedup; a gap is refused.
  ASSERT_OK(call_status(relay.Encode()));
  EXPECT_EQ(server.applied_seq("T"), 1u);
  net::WireReplicate gap = relay;
  gap.setup_batch = false;
  gap.batch_seq = 3;
  EXPECT_EQ(call_status(gap.Encode()).code(), StatusCode::kFailedPrecondition);

  // Promotion with a stale expected position is refused; the probed
  // position succeeds and clears the follower role.
  net::WirePromote stale;
  stale.tables.push_back({"T", 2, 0});
  EXPECT_EQ(call_status(stale.Encode()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(server.is_follower());

  auto probe = channel.Call(net::WireReplicaStateRequest{}.Encode().value());
  ASSERT_OK(probe);
  auto state = net::WireReplicaState::Decode(probe.value());
  ASSERT_OK(state);
  EXPECT_TRUE(state.value().follower);
  ASSERT_EQ(state.value().tables.size(), 1u);
  net::WirePromote promote;
  promote.tables.push_back({"T", state.value().tables[0].applied_seq,
                            state.value().tables[0].commit_epoch});
  ASSERT_OK(call_status(promote.Encode()));
  EXPECT_FALSE(server.is_follower());

  // Promoted: owner ingest now lands (the next sequenced batch).
  ingest.setup_batch = false;
  ingest.batch_seq = 2;
  ASSERT_OK(call_status(ingest.Encode()));
  EXPECT_EQ(server.applied_seq("T"), 2u);

  channel.Close();
  server.Shutdown();
}

}  // namespace
}  // namespace dpsync::dist
