// Tests for src/common: bytes, status, rng, stats, csv, table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

namespace dpsync {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(b), "0001abff");
  Bytes back;
  ASSERT_TRUE(FromHex("0001abff", &back));
  EXPECT_EQ(back, b);
}

TEST(BytesTest, HexUppercaseAccepted) {
  Bytes b;
  ASSERT_TRUE(FromHex("DEADBEEF", &b));
  EXPECT_EQ(ToHex(b), "deadbeef");
}

TEST(BytesTest, HexRejectsOddLength) {
  Bytes b;
  EXPECT_FALSE(FromHex("abc", &b));
}

TEST(BytesTest, HexRejectsNonHex) {
  Bytes b;
  EXPECT_FALSE(FromHex("zz", &b));
}

TEST(BytesTest, LittleEndianRoundTrip64) {
  uint8_t buf[8];
  StoreLE64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(LoadLE64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0xef);  // least significant byte first
}

TEST(BytesTest, LittleEndianRoundTrip32) {
  uint8_t buf[4];
  StoreLE32(buf, 0xdeadbeef);
  EXPECT_EQ(LoadLE32(buf), 0xdeadbeefu);
}

TEST(BytesTest, BigEndian32) {
  uint8_t buf[4];
  StoreBE32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(LoadBE32(buf), 0x01020304u);
}

TEST(BytesTest, ConstantTimeEquals) {
  Bytes a = ToBytes("secret"), b = ToBytes("secret"), c = ToBytes("sEcret");
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, ToBytes("secret!")));
  EXPECT_TRUE(ConstantTimeEquals({}, {}));
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad epsilon");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(77);
  uint64_t first = a.Next();
  a.Next();
  a.Reseed(77);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoublePositiveNeverZero) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.UniformDoublePositive(), 0.0);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, LaplaceMeanAndScale) {
  Rng rng(8);
  const double b = 2.0;
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Laplace(b));
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  // Var(Lap(b)) = 2 b^2 = 8.
  EXPECT_NEAR(s.variance(), 8.0, 0.4);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.Exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(10);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.Gaussian(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, PoissonMean) {
  Rng rng(12);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.Add(static_cast<double>(rng.Poisson(4.0)));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(14);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PercentileTest, Median) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5, 1, 9};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 9.0);
}

TEST(PercentileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 25), 2.5);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(SeriesTest, SummarizeAggregates) {
  Series s;
  s.Add(1, 10);
  s.Add(2, 20);
  auto stat = s.Summarize();
  EXPECT_EQ(stat.count(), 2);
  EXPECT_DOUBLE_EQ(stat.mean(), 15.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"a", "1"});
  tp.AddRow({"longer", "2"});
  std::ostringstream os;
  tp.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter tp({"a", "b"});
  tp.AddRow({"1", "2"});
  std::ostringstream os;
  tp.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

TEST(CsvTest, SplitLine) {
  auto f = SplitCsvLine("a,b,,d");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "d");
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::string path = testing::TempDir() + "/dpsync_csv_test.csv";
  ASSERT_TRUE(WriteCsv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}}).ok());
  auto rows = ReadCsv(path, /*skip_header=*/true);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "4");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto rows = ReadCsv("/nonexistent/path.csv", false);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 8, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForChunkingIsDeterministic) {
  ThreadPool pool(4);
  auto boundaries = [&] {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks(4);
    pool.ParallelFor(103, 4, [&](size_t c, size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks[c] = {begin, end};
    });
    return chunks;
  };
  auto a = boundaries();
  auto b = boundaries();
  EXPECT_EQ(a, b);
  // Chunks partition [0, 103) contiguously in index order.
  size_t expect_begin = 0;
  for (const auto& [begin, end] : a) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GE(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ThreadPoolTest, SingleChunkRunsInline) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(10, 1, [&](size_t, size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, SubmitRunsEverything) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  // Destructor note: draining happens via ParallelFor-style sync in
  // production; here just spin briefly.
  for (int spin = 0; spin < 2000 && done.load() < 50; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, SharedPoolIsSingletonAndAlive) {
  ThreadPool* a = SharedPool();
  ThreadPool* b = SharedPool();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 2u);
}

// Property sweep: Laplace tail matches exp(-t/b) for several scales.
class LaplaceTailTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceTailTest, TailMatchesAnalytic) {
  double b = GetParam();
  Rng rng(static_cast<uint64_t>(b * 1000) + 17);
  const int n = 100000;
  const double t = 2.0 * b;
  int exceed = 0;
  for (int i = 0; i < n; ++i) exceed += (std::fabs(rng.Laplace(b)) >= t);
  double expected = std::exp(-t / b);  // = e^-2 ~ 0.135
  EXPECT_NEAR(exceed / static_cast<double>(n), expected, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceTailTest,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

#ifdef MINIGTEST_GTEST_H_
// Self-test of the vendored shim's late-TEST_P guard (real GoogleTest
// instantiates late bodies itself, so this only compiles against the
// shim). A TEST_P body that registers after its fixture's
// INSTANTIATE_TEST_SUITE_P is not part of any instantiation; the shim
// must record it so RunAllTests fails instead of silently dropping the
// body. The probe entry is popped again so this suite still passes.
struct LateParamProbe : public ::testing::TestWithParam<int> {};

TEST(MiniGtestShimTest, LateTestPRegistrationIsRecorded) {
  using Suite = ::testing::internal::ParamSuite<LateParamProbe>;
  auto& late = ::testing::internal::Registry::Get().late_param_cases;
  const size_t cases_before = Suite::Cases().size();
  const size_t late_before = late.size();

  ASSERT_FALSE(Suite::Instantiated());
  Suite::Instantiated() = true;  // as if INSTANTIATE_TEST_SUITE_P ran
  struct ProbeCase : LateParamProbe {
    void TestBody() override {}
  };
  Suite::AddCase<ProbeCase>("LateParamProbe", "ProbeCase");

  ASSERT_EQ(late.size(), late_before + 1);
  EXPECT_EQ(late.back(), "LateParamProbe.ProbeCase");
  ASSERT_EQ(Suite::Cases().size(), cases_before + 1);

  // Undo the probe: drop the recorded violation and the orphan case so
  // the registry is exactly as before.
  late.pop_back();
  Suite::Cases().pop_back();
  Suite::Instantiated() = false;
}
#endif  // MINIGTEST_GTEST_H_

}  // namespace
}  // namespace dpsync
