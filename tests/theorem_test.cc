// Property tests for the paper's theorems (6-9): high-probability bounds
// on the logical gap / local cache size and on the outsourced data volume
// for DP-Timer and DP-ANT, swept over epsilon with TEST_P.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/dp_ant.h"
#include "core/dp_timer.h"
#include "core/engine.h"
#include "core/naive_strategies.h"
#include "workload/taxi_generator.h"
#include "workload/trip_record.h"

namespace dpsync {
namespace {

/// Minimal counting backend.
class CountingBackend : public SogdbBackend {
 public:
  Status Setup(const std::vector<Record>& g) override {
    count_ += static_cast<int64_t>(g.size());
    return Status::Ok();
  }
  Status Update(const std::vector<Record>& g) override {
    count_ += static_cast<int64_t>(g.size());
    return Status::Ok();
  }
  int64_t outsourced_count() const override { return count_; }

 private:
  int64_t count_ = 0;
};

struct RunOutcome {
  int64_t max_gap = 0;
  int64_t final_outsourced = 0;
  int64_t received = 0;
  int64_t syncs = 0;  // k
  int64_t flush_events = 0;
};

RunOutcome RunStrategy(std::unique_ptr<SyncStrategy> strategy,
                       int64_t horizon, int64_t arrival_every, uint64_t seed) {
  CountingBackend backend;
  DpSyncEngine engine(std::move(strategy), &backend,
                      workload::MakeTripDummyFactory(seed ^ 1), seed);
  EXPECT_TRUE(engine.Setup({}).ok());
  RunOutcome out;
  for (int64_t t = 1; t <= horizon; ++t) {
    std::optional<Record> arrival;
    if (t % arrival_every == 0) {
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = 1;
      arrival = trip.ToRecord();
    }
    EXPECT_TRUE(engine.Tick(arrival).ok());
    out.max_gap = std::max(out.max_gap, engine.logical_gap());
  }
  out.final_outsourced = backend.outsourced_count();
  out.received = engine.counters().received_total;
  for (const auto& e : engine.update_pattern().events()) {
    out.flush_events += e.is_flush ? 1 : 0;
  }
  out.syncs = engine.counters().updates_posted;
  return out;
}

class TimerBoundTest : public ::testing::TestWithParam<double> {};

// Theorem 6: LG(t) <= c_t + 2/eps * sqrt(k log(1/beta)) w.p. >= 1-beta.
// We run many independent streams and check the violation rate.
TEST_P(TimerBoundTest, LogicalGapBound) {
  const double eps = GetParam();
  const int64_t T = 30, horizon = 3000, arrival_every = 3;
  const double beta = 0.05;
  const int trials = 40;
  int violations = 0;
  for (int trial = 0; trial < trials; ++trial) {
    DpTimerConfig cfg;
    cfg.epsilon = eps;
    cfg.period = T;
    cfg.flush_interval = 0;  // isolate the DP mechanism from the flush
    auto out = RunStrategy(std::make_unique<DpTimerStrategy>(cfg), horizon,
                           arrival_every, 1000 + static_cast<uint64_t>(trial));
    double k = std::ceil(static_cast<double>(horizon) / T);
    double alpha = 2.0 / eps * std::sqrt(k * std::log(1.0 / beta));
    // c_t (records since last sync) <= T/arrival_every at any time.
    double c_t = static_cast<double>(T / arrival_every);
    if (static_cast<double>(out.max_gap) > alpha + c_t) ++violations;
  }
  // The bound holds per-time-step w.p. 1-beta; taking the max over the run
  // is stricter, so allow a loose violation budget.
  EXPECT_LE(violations, trials / 4);
}

// Theorem 7: |DS_t| <= |D_t| + alpha + s*floor(t/f) w.h.p.
TEST_P(TimerBoundTest, OutsourcedSizeBound) {
  const double eps = GetParam();
  const int64_t T = 30, horizon = 3000, arrival_every = 3;
  const double beta = 0.05;
  const int trials = 40;
  int violations = 0;
  for (int trial = 0; trial < trials; ++trial) {
    DpTimerConfig cfg;
    cfg.epsilon = eps;
    cfg.period = T;
    cfg.flush_interval = 500;
    cfg.flush_size = 10;
    auto out = RunStrategy(std::make_unique<DpTimerStrategy>(cfg), horizon,
                           arrival_every, 2000 + static_cast<uint64_t>(trial));
    double k = std::ceil(static_cast<double>(horizon) / T);
    double alpha = 2.0 / eps * std::sqrt(k * std::log(1.0 / beta));
    double eta = 10.0 * std::floor(static_cast<double>(horizon) / 500.0);
    if (static_cast<double>(out.final_outsourced) >
        static_cast<double>(out.received) + alpha + eta) {
      ++violations;
    }
  }
  EXPECT_LE(violations, trials / 4);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, TimerBoundTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

class AntBoundTest : public ::testing::TestWithParam<double> {};

// Theorem 8: LG(t) <= c_t + 16(log t + log(2/beta))/eps w.h.p.
TEST_P(AntBoundTest, LogicalGapBound) {
  const double eps = GetParam();
  const int64_t horizon = 3000, arrival_every = 3;
  const double theta = 15;
  const double beta = 0.05;
  const int trials = 40;
  int violations = 0;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(3000 + static_cast<uint64_t>(trial));
    DpAntConfig cfg;
    cfg.epsilon = eps;
    cfg.threshold = theta;
    cfg.flush_interval = 0;
    auto out =
        RunStrategy(std::make_unique<DpAntStrategy>(cfg, &rng), horizon,
                    arrival_every, 4000 + static_cast<uint64_t>(trial));
    double alpha = 16.0 *
                   (std::log(static_cast<double>(horizon)) +
                    std::log(2.0 / beta)) /
                   eps;
    // c_t: records accumulated before the SVT fires; in expectation theta
    // plus the noise margin already counted by alpha.
    double c_t = theta;
    if (static_cast<double>(out.max_gap) > alpha + c_t) ++violations;
  }
  EXPECT_LE(violations, trials / 4);
}

// Theorem 9: |DS_t| <= |D_t| + alpha + s*floor(t/f) w.h.p.
// The proof presumes the sync count k ~ L/theta (data-driven fires); when
// the SVT noise scale 4/eps1 = 8/eps reaches theta, spurious fires make k
// grow with t and the dummy volume exceeds the stated alpha. We therefore
// check the bound in its intended regime, 8/eps < theta.
TEST_P(AntBoundTest, OutsourcedSizeBound) {
  const double eps = GetParam();
  if (8.0 / eps >= 15.0) {
    GTEST_SKIP() << "outside the theorem's low-spurious-fire regime";
  }
  const int64_t horizon = 3000, arrival_every = 3;
  const double beta = 0.05;
  const int trials = 40;
  int violations = 0;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(5000 + static_cast<uint64_t>(trial));
    DpAntConfig cfg;
    cfg.epsilon = eps;
    cfg.threshold = 15;
    cfg.flush_interval = 500;
    cfg.flush_size = 10;
    auto out =
        RunStrategy(std::make_unique<DpAntStrategy>(cfg, &rng), horizon,
                    arrival_every, 6000 + static_cast<uint64_t>(trial));
    double alpha = 16.0 *
                   (std::log(static_cast<double>(horizon)) +
                    std::log(2.0 / beta)) /
                   eps;
    double eta = 10.0 * std::floor(static_cast<double>(horizon) / 500.0);
    if (static_cast<double>(out.final_outsourced) >
        static_cast<double>(out.received) + alpha + eta) {
      ++violations;
    }
  }
  EXPECT_LE(violations, trials / 4);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, AntBoundTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

// Table 2 qualitative rows: naive strategies' exact characteristics.
TEST(Table2Test, SurZeroGapExactVolume) {
  auto out = RunStrategy(std::make_unique<SurStrategy>(), 2000, 4, 1);
  EXPECT_EQ(out.max_gap, 0);
  EXPECT_EQ(out.final_outsourced, out.received);
}

TEST(Table2Test, OtoFullGapZeroUploads) {
  auto out = RunStrategy(std::make_unique<OtoStrategy>(), 2000, 4, 2);
  EXPECT_EQ(out.max_gap, out.received);
  EXPECT_EQ(out.final_outsourced, 0);  // empty D_0
}

TEST(Table2Test, SetVolumeIsInitialPlusT) {
  auto out = RunStrategy(std::make_unique<SetStrategy>(), 2000, 4, 3);
  EXPECT_EQ(out.final_outsourced, 2000);  // |D_0| + t with empty D_0
  EXPECT_EQ(out.max_gap, 0);
}

// The flush mechanism bounds the cache: with flush (f, s) every record is
// outsourced by t = f * L / s, so after the stream ends the gap drains.
TEST(FlushBoundTest, CacheDrainedOnSchedule) {
  DpTimerConfig cfg;
  cfg.epsilon = 0.2;  // heavy noise -> records often deferred
  cfg.period = 25;
  cfg.flush_interval = 200;
  cfg.flush_size = 20;
  CountingBackend backend;
  DpSyncEngine engine(std::make_unique<DpTimerStrategy>(cfg), &backend,
                      workload::MakeTripDummyFactory(7), 8);
  ASSERT_TRUE(engine.Setup({}).ok());
  for (int64_t t = 1; t <= 2000; ++t) {
    std::optional<Record> arrival;
    if (t <= 1000 && t % 2 == 0) {
      workload::TripRecord trip;
      trip.pick_time = t;
      arrival = trip.ToRecord();
    }
    ASSERT_TRUE(engine.Tick(arrival).ok());
  }
  // 500 records arrived by t=1000; flushes alone move >= 20 per 200 ticks,
  // so by t=2000 (5 more flushes = 100 records) plus DP syncs the cache
  // must long be empty.
  EXPECT_EQ(engine.logical_gap(), 0);
}

}  // namespace
}  // namespace dpsync
