// Visibility and stability edges of the epoch-snapshot layer
// (edb/snapshot.h, docs/CONCURRENCY.md): CommitEpoch advance on flush,
// owner reads-its-own-flush, snapshots pinned to an epoch staying stable
// while owner appends race, epoch advance during ExecuteMany, the
// ORAM-indexed mode staying fully serialized, and snapshot scans being
// bit-identical to locked scans on the noisy Crypt-eps path. The racing
// cases are the ones the CI TSan job leans on: they read pinned spans
// lock-free while the owner keeps appending.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/naive_strategies.h"
#include "edb/crypte_engine.h"
#include "edb/encrypted_table.h"
#include "edb/oblidb_engine.h"
#include "edb/snapshot.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::edb {
namespace {

using testutil::Trip;
using workload::TripSchema;

/// Sum of one numeric column over a pinned view — touches every visible
/// row, which is exactly what must stay safe and stable while appends
/// race (column 1 is pickupID in the trip schema).
double SpanColumnSum(const SnapshotView& view, size_t col) {
  double sum = 0;
  for (const auto& span : view.spans) {
    for (size_t i = 0; i < span.size; ++i) sum += span.data[i][col].AsDouble();
  }
  return sum;
}

int64_t SpanRowCount(const SnapshotView& view) {
  int64_t rows = 0;
  for (const auto& span : view.spans) rows += static_cast<int64_t>(span.size);
  return rows;
}

// ------------------------------------------------- CommitEpoch semantics

TEST(CommitEpochTest, UncommittedTailInvisibleUntilFlush) {
  StorageConfig cfg;
  cfg.flush_every_update = false;  // manual commit points
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1), cfg);
  ASSERT_OK(store.Setup({Trip(1, 10), Trip(2, 20), Trip(3, 30)}));

  // Appended but not flushed: no commit point yet. The full enclave view
  // (locked path) sees the tail; a snapshot does not.
  EXPECT_EQ(store.commit_epoch(), 0u);
  EXPECT_EQ(store.committed_rows(), 0);
  {
    std::lock_guard<std::mutex> lk(store.table_mutex());
    auto snap = store.Snapshot();
    ASSERT_OK(snap);
    EXPECT_EQ(snap->total_rows, 0);
    EXPECT_TRUE(snap->spans.empty());
    auto full = store.EnclaveView();
    ASSERT_OK(full);
    EXPECT_EQ(full->total_rows, 3);
  }

  // Flush = the commit point: the epoch advances and the records become
  // snapshot-visible.
  ASSERT_OK(store.Flush());
  EXPECT_EQ(store.commit_epoch(), 1u);
  EXPECT_EQ(store.committed_rows(), 3);
  {
    std::lock_guard<std::mutex> lk(store.table_mutex());
    auto snap = store.Snapshot();
    ASSERT_OK(snap);
    EXPECT_EQ(snap->total_rows, 3);
    EXPECT_EQ(snap->epoch, 1u);
  }

  // An idle flush commits nothing new and must NOT advance the epoch
  // (an unchanged epoch is a reader's license to keep reusing a view).
  ASSERT_OK(store.Flush());
  EXPECT_EQ(store.commit_epoch(), 1u);
}

TEST(CommitEpochTest, AutoFlushAdvancesPerUpdate) {
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1));
  ASSERT_OK(store.Setup({Trip(1, 10)}));
  uint64_t after_setup = store.commit_epoch();
  EXPECT_GE(after_setup, 1u);
  ASSERT_OK(store.Update({Trip(2, 20)}));
  EXPECT_GT(store.commit_epoch(), after_setup);
  EXPECT_EQ(store.committed_rows(), 2);
}

TEST(CommitEpochTest, EngineObservesFlushCommitPoint) {
  // The owner-side engine sees the commit point through the SogdbBackend
  // surface: after a posted update lands, its own flush is readable.
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1));
  DpSyncEngine engine(std::make_unique<SurStrategy>(), &store,
                      testutil::TestDummyFactory(), /*seed=*/7);
  ASSERT_OK(engine.Setup({Trip(1, 10)}));
  uint64_t epoch0 = engine.backend_commit_epoch();
  EXPECT_GE(epoch0, 1u);
  // SUR posts on arrival: the tick both appends and commits.
  ASSERT_OK(engine.Tick(Trip(2, 20)));
  EXPECT_GT(engine.backend_commit_epoch(), epoch0);
  EXPECT_EQ(store.committed_rows(), 2);
}

// --------------------------------------------------- reads-your-own-flush

TEST(SnapshotVisibilityTest, OwnerReadsItsOwnFlushThroughSnapshotScans) {
  ObliDbConfig cfg;  // snapshot_scans defaults on
  ASSERT_TRUE(cfg.snapshot_scans);
  // This test pins the *scan* path: with views on, an eligible COUNT(*)
  // answers from folded state and never reaches the snapshot layer
  // (view_test covers that route).
  cfg.materialized_views = false;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> init;
  for (int64_t i = 0; i < 10; ++i) init.push_back(Trip(i, i));
  ASSERT_OK(t.value()->Setup(init));

  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto r1 = session->Execute(q.value());
  ASSERT_TRUE(r1.ok());
  EXPECT_DOUBLE_EQ(r1->result.scalar, 10.0);

  // The owner's Update auto-flushes; the very next snapshot scan must see
  // it (no stale-epoch window on the same thread).
  uint64_t epoch_before = t.value()->commit_epoch();
  ASSERT_OK(t.value()->Update({Trip(10, 10), Trip(11, 11)}));
  EXPECT_GT(t.value()->commit_epoch(), epoch_before);
  auto r2 = session->Execute(q.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->result.scalar, 12.0);
  EXPECT_EQ(server.stats().snapshot_scans, 2);
}

// ------------------------------------------------- pinned-view stability

TEST(SnapshotStabilityTest, PinnedViewStableWhileAppendsRace) {
  StorageConfig cfg;
  cfg.num_shards = 4;
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1), cfg);
  std::vector<Record> init;
  for (int64_t i = 0; i < 500; ++i) init.push_back(Trip(i, i % 40));
  ASSERT_OK(store.Setup(init));

  SnapshotView pinned;
  {
    std::lock_guard<std::mutex> lk(store.table_mutex());
    auto snap = store.Snapshot();
    ASSERT_OK(snap);
    pinned = std::move(snap.value());
  }
  ASSERT_EQ(pinned.total_rows, 500);
  const double baseline_sum = SpanColumnSum(pinned, 1);

  // Owner keeps appending (and auto-committing) while readers re-walk the
  // pinned spans lock-free: row count and content must never waver, no
  // matter how many epochs advance underneath. This is the TSan case.
  constexpr int kBatches = 100;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 0; b < kBatches; ++b) {
      if (!store.Update({Trip(500 + b, b % 40), Trip(600 + b, b % 40)}).ok()) {
        ++failures;
      }
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (SpanRowCount(pinned) != 500) ++failures;
        if (SpanColumnSum(pinned, 1) != baseline_sum) ++failures;
      }
    });
  }
  owner.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent: a fresh snapshot sees everything the owner committed.
  std::lock_guard<std::mutex> lk(store.table_mutex());
  auto now = store.Snapshot();
  ASSERT_OK(now);
  EXPECT_EQ(now->total_rows, 500 + 2 * kBatches);
  EXPECT_GT(now->epoch, pinned.epoch);
}

TEST(SnapshotStabilityTest, ScanAnswersAreCommittedPrefixesUnderRacingAppends) {
  // Server-level version of the pin: owner appends batches of 3 while
  // analysts run COUNT(*). Every answer must be a committed prefix —
  // i.e. ≡ 1 (mod 3) given the 1-record Setup — never a torn mid-batch
  // count.
  ObliDbConfig cfg;
  cfg.storage.num_shards = 4;
  cfg.admission.max_in_flight = 4;
  cfg.admission.max_queue = 4096;
  cfg.materialized_views = false;  // exercise the racing snapshot scans
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup({Trip(0, 1)}));

  constexpr int kBatches = 60;
  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 1; b <= kBatches; ++b) {
      std::vector<Record> batch = {Trip(b, 1), Trip(b, 2), Trip(b, 3)};
      if (!t.value()->Update(batch).ok()) ++failures;
    }
  });
  std::vector<std::thread> analysts;
  for (int a = 0; a < 3; ++a) {
    analysts.emplace_back([&] {
      auto session = server.CreateSession();
      auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
      if (!q.ok()) {
        ++failures;
        return;
      }
      double last = 0;
      for (int i = 0; i < 20; ++i) {
        auto r = session->Execute(q.value());
        if (!r.ok()) {
          ++failures;
          continue;
        }
        double count = r->result.scalar;
        // Committed prefix: 1 + 3k. Also monotone within one analyst —
        // epochs only advance.
        if (static_cast<int64_t>(count - 1) % 3 != 0) ++failures;
        if (count < last) ++failures;
        last = count;
      }
    });
  }
  owner.join();
  for (auto& th : analysts) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(server.stats().snapshot_scans, 0);

  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 1.0 + 3.0 * kBatches);
}

TEST(SnapshotStabilityTest, EpochAdvancesDuringExecuteMany) {
  // A whole batch executes while the owner races epochs forward: every
  // response lands on some committed prefix, and the fan-out itself runs
  // through the snapshot layer (no per-table serialization).
  ObliDbConfig cfg;
  cfg.admission.max_in_flight = 8;
  cfg.admission.max_queue = 4096;
  cfg.materialized_views = false;  // count the snapshot-layer fan-out itself
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup({Trip(0, 1), Trip(0, 2)}));

  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  std::vector<PreparedQuery> batch(24, q.value());

  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 1; b <= 40; ++b) {
      if (!t.value()->Update({Trip(b, 1), Trip(b, 2), Trip(b, 3)}).ok()) {
        ++failures;
      }
    }
  });
  auto responses = session->ExecuteMany(batch);
  owner.join();
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), batch.size());
  for (const auto& resp : *responses) {
    EXPECT_EQ(static_cast<int64_t>(resp.result.scalar - 2) % 3, 0)
        << "count " << resp.result.scalar << " is not a committed prefix";
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().snapshot_scans,
            static_cast<int64_t>(batch.size()));
}

// ------------------------------------------------- serialization fences

TEST(SnapshotRoutingTest, IndexedModeStaysSerialized) {
  // ORAM scans rewrite tree state: even with snapshot_scans on, indexed
  // plans must take the locked path (counter stays 0) and still answer
  // correctly under owner pressure.
  ObliDbConfig cfg;
  cfg.use_oram_index = true;
  cfg.oram_capacity = 4096;
  cfg.snapshot_scans = true;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup({Trip(0, 1)}));

  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 1; b <= 30; ++b) {
      if (!t.value()->Update({Trip(b, b % 10)}).ok()) ++failures;
    }
  });
  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 10; ++i) {
    if (!session->Execute(q.value()).ok()) ++failures;
  }
  owner.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().snapshot_scans, 0);

  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 31.0);
  EXPECT_GT(r->stats.oram_paths, 0);
}

TEST(SnapshotRoutingTest, KnobOffKeepsLockedPath) {
  ObliDbConfig cfg;
  cfg.snapshot_scans = false;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup({Trip(0, 1), Trip(1, 2)}));
  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 2.0);
  EXPECT_EQ(server.stats().snapshot_scans, 0);
}

// --------------------------------------------------- cross-path identity

TEST(SnapshotIdentityTest, CryptEpsSnapshotScanBitIdenticalToLocked) {
  // Same seed, same data, same query sequence: the snapshot path must
  // consume the noise RNG exactly like the locked path, so every noisy
  // answer and cost metric is bit-identical.
  auto run = [](bool snapshot_scans) {
    CryptEpsConfig cfg;
    cfg.master_seed = 11;
    cfg.snapshot_scans = snapshot_scans;
    CryptEpsServer server(cfg);
    auto t = server.CreateTable("YellowCab", TripSchema());
    EXPECT_TRUE(t.ok());
    std::vector<Record> init;
    for (int64_t i = 0; i < 64; ++i) init.push_back(Trip(i, i % 7));
    EXPECT_OK(t.value()->Setup(init));
    auto session = server.CreateSession();
    std::vector<std::pair<double, double>> outcomes;  // (answer, qet)
    for (int round = 0; round < 3; ++round) {
      for (const char* sql :
           {"SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 1 AND 4",
            "SELECT SUM(fare) FROM YellowCab"}) {
        auto q = session->Prepare(sql);
        EXPECT_TRUE(q.ok());
        auto r = session->Execute(q.value());
        EXPECT_TRUE(r.ok());
        outcomes.emplace_back(r->result.scalar, r->stats.virtual_seconds);
      }
      EXPECT_OK(t.value()->Update({Trip(100 + round, round % 7)}));
    }
    return outcomes;
  };
  auto locked = run(false);
  auto snapshot = run(true);
  ASSERT_EQ(locked.size(), snapshot.size());
  for (size_t i = 0; i < locked.size(); ++i) {
    EXPECT_DOUBLE_EQ(snapshot[i].first, locked[i].first) << i;
    EXPECT_DOUBLE_EQ(snapshot[i].second, locked[i].second) << i;
  }
}

TEST(SnapshotIdentityTest, PinnedViewSurvivesReopen) {
  // Reopen drops the mirrors, but a pinned view co-owns its chunks: a
  // reader that started before the restart finishes on pre-restart data.
  namespace fs = std::filesystem;
  static int counter = 0;
  std::string dir =
      (fs::temp_directory_path() /
       ("dpsync-snapshot-test-" + std::to_string(counter++))).string();
  fs::remove_all(dir);
  StorageConfig cfg;
  cfg.backend = StorageBackendKind::kSegmentLog;
  cfg.dir = dir;
  cfg.num_shards = 2;
  {
    EncryptedTableStore store("T", TripSchema(), Bytes(32, 1), cfg);
    std::vector<Record> init;
    for (int64_t i = 0; i < 50; ++i) init.push_back(Trip(i, i % 5));
    ASSERT_OK(store.Setup(init));

    SnapshotView pinned;
    uint64_t epoch_before;
    {
      std::lock_guard<std::mutex> lk(store.table_mutex());
      auto snap = store.Snapshot();
      ASSERT_OK(snap);
      pinned = std::move(snap.value());
      epoch_before = store.commit_epoch();
    }
    double sum = SpanColumnSum(pinned, 1);

    ASSERT_OK(store.Reopen());
    EXPECT_GT(store.commit_epoch(), epoch_before);  // visibility regime changed
    EXPECT_EQ(SpanRowCount(pinned), 50);            // pinned data intact
    EXPECT_EQ(SpanColumnSum(pinned, 1), sum);

    std::lock_guard<std::mutex> lk(store.table_mutex());
    auto fresh = store.Snapshot();
    ASSERT_OK(fresh);
    EXPECT_EQ(fresh->total_rows, 50);  // recovered prefix is committed
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dpsync::edb
