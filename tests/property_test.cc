// Cross-strategy property tests (TEST_P over the full strategy matrix):
// invariants every synchronization policy must uphold regardless of its
// privacy/accuracy trade-off, checked on randomized streams.
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.h"
#include "core/strategy_factory.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/rewriter.h"
#include "workload/taxi_generator.h"
#include "workload/trip_record.h"

namespace dpsync {
namespace {

class RecordingBackend : public SogdbBackend {
 public:
  Status Setup(const std::vector<Record>& g) override { return Add(g); }
  Status Update(const std::vector<Record>& g) override {
    ++update_calls_;
    return Add(g);
  }
  int64_t outsourced_count() const override {
    return static_cast<int64_t>(received_.size());
  }
  const std::vector<Record>& received() const { return received_; }
  int64_t update_calls() const { return update_calls_; }

 private:
  Status Add(const std::vector<Record>& g) {
    received_.insert(received_.end(), g.begin(), g.end());
    return Status::Ok();
  }
  std::vector<Record> received_;
  int64_t update_calls_ = 0;
};

using MatrixParam = std::tuple<StrategyKind, uint64_t /*seed*/>;

class StrategyMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StrategyMatrixTest, CoreInvariantsHold) {
  auto [kind, seed] = GetParam();
  Rng rng(seed);
  StrategyParams params;
  params.flush_interval = 700;
  params.flush_size = 8;
  RecordingBackend backend;
  DpSyncEngine engine(MakeStrategy(kind, params, &rng), &backend,
                      workload::MakeTripDummyFactory(seed ^ 0xff), seed);

  // Initial database of 20 records.
  std::vector<Record> initial;
  for (int64_t i = 0; i < 20; ++i) {
    workload::TripRecord trip;
    trip.pick_time = 0;
    trip.pickup_id = i + 1;
    initial.push_back(trip.ToRecord());
  }
  ASSERT_TRUE(engine.Setup(std::move(initial)).ok());

  Rng arrivals(seed * 31 + 7);
  const int64_t horizon = 2100;
  for (int64_t t = 1; t <= horizon; ++t) {
    std::optional<Record> arrival;
    if (arrivals.Bernoulli(0.35)) {
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = arrivals.UniformInt(1, 265);
      arrival = trip.ToRecord();
    }
    ASSERT_TRUE(engine.Tick(std::move(arrival)).ok());

    // Invariant 1: conservation — every record the owner holds is either
    // still cached or was shipped as a real record.
    const auto& c = engine.counters();
    ASSERT_EQ(c.received_total + c.initial_size,
              c.real_synced + engine.logical_gap())
        << engine.strategy().name() << " at t=" << t;
  }

  // Invariant 2: the update pattern transcript exactly accounts for the
  // server's holdings.
  EXPECT_EQ(engine.update_pattern().total_volume(), backend.outsourced_count());
  EXPECT_EQ(engine.update_pattern().num_updates() - 1,  // minus setup event
            backend.update_calls());

  // Invariant 3: server holdings = real + dummy accounting.
  EXPECT_EQ(backend.outsourced_count(),
            engine.counters().real_synced + engine.counters().dummy_synced);

  // Invariant 4 (P3, order half): real records reach the server in FIFO
  // arrival order.
  int64_t last_time = -1;
  int64_t last_zone = -1;
  for (const auto& r : backend.received()) {
    if (r.is_dummy) continue;
    auto trip = workload::TripRecord::FromRecord(r);
    ASSERT_TRUE(trip.ok());
    if (trip->pick_time == 0) {
      // Initial DB: zones were assigned in increasing order.
      ASSERT_EQ(last_time, -1) << "initial records must precede stream";
      EXPECT_GT(trip->pickup_id, last_zone);
      last_zone = trip->pickup_id;
    } else {
      EXPECT_GT(trip->pick_time, last_time);
      last_time = trip->pick_time;
    }
  }

  // Invariant 5: every shipped record still decrypts/parses (payloads are
  // never corrupted by the pipeline).
  for (const auto& r : backend.received()) {
    EXPECT_TRUE(workload::TripRecord::FromRecord(r).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyMatrixTest,
    ::testing::Combine(::testing::Values(StrategyKind::kSur, StrategyKind::kOto,
                                         StrategyKind::kSet,
                                         StrategyKind::kDpTimer,
                                         StrategyKind::kDpAnt),
                       ::testing::Values(11u, 29u, 47u)));

// The analyst's view must converge once the stream stops (P3, eventual
// consistency) for every strategy that uploads at all (OTO excluded).
class ConvergenceTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(ConvergenceTest, QueriesConvergeAfterStreamEnds) {
  StrategyKind kind = GetParam();
  Rng rng(5);
  StrategyParams params;
  params.flush_interval = 300;
  params.flush_size = 10;
  RecordingBackend backend;
  DpSyncEngine engine(MakeStrategy(kind, params, &rng), &backend,
                      workload::MakeTripDummyFactory(6), 7);
  ASSERT_TRUE(engine.Setup({}).ok());

  query::Table logical;
  logical.name = "T";
  logical.schema = workload::TripSchema();

  Rng arrivals(8);
  for (int64_t t = 1; t <= 600; ++t) {
    std::optional<Record> arrival;
    if (arrivals.Bernoulli(0.4)) {
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = arrivals.UniformInt(1, 100);
      logical.rows.push_back(trip.ToRow());
      arrival = trip.ToRecord();
    }
    ASSERT_TRUE(engine.Tick(std::move(arrival)).ok());
  }
  // Quiet period long enough for flushes to drain any residue.
  for (int64_t t = 601; t <= 600 + 300 * 40; ++t) {
    ASSERT_TRUE(engine.Tick(std::nullopt).ok());
    if (engine.logical_gap() == 0) break;
  }
  ASSERT_EQ(engine.logical_gap(), 0) << StrategyKindName(kind);

  // Count real records on the "server" (dummy-aware view): must equal the
  // logical database exactly.
  query::Table server_view;
  server_view.name = "T";
  server_view.schema = workload::TripSchema();
  for (const auto& r : backend.received()) {
    auto row = query::DeserializeRow(r.payload);
    ASSERT_TRUE(row.ok());
    server_view.rows.push_back(std::move(row.value()));
  }
  query::Catalog catalog;
  catalog.AddTable(&server_view);
  query::Executor executor(&catalog);
  auto q = query::ParseSelect("SELECT COUNT(*) FROM T");
  auto rewritten = query::RewriteForDummies(q.value());
  auto server_count = executor.Execute(rewritten);
  ASSERT_TRUE(server_count.ok());
  EXPECT_DOUBLE_EQ(server_count->scalar,
                   static_cast<double>(logical.rows.size()));
}

INSTANTIATE_TEST_SUITE_P(Strategies, ConvergenceTest,
                         ::testing::Values(StrategyKind::kSur,
                                           StrategyKind::kSet,
                                           StrategyKind::kDpTimer,
                                           StrategyKind::kDpAnt));

}  // namespace
}  // namespace dpsync
