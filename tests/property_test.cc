// Cross-strategy property tests (TEST_P over the full strategy matrix):
// invariants every synchronization policy must uphold regardless of its
// privacy/accuracy trade-off, checked on randomized streams.
#include <gtest/gtest.h>

#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/strategy_factory.h"
#include "edb/crypte_engine.h"
#include "edb/oblidb_engine.h"
#include "edb/storage_backend.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/result.h"
#include "query/rewriter.h"
#include "test_util.h"
#include "workload/taxi_generator.h"
#include "workload/trip_record.h"

namespace dpsync {
namespace {

class RecordingBackend : public SogdbBackend {
 public:
  Status Setup(const std::vector<Record>& g) override { return Add(g); }
  Status Update(const std::vector<Record>& g) override {
    ++update_calls_;
    return Add(g);
  }
  int64_t outsourced_count() const override {
    return static_cast<int64_t>(received_.size());
  }
  const std::vector<Record>& received() const { return received_; }
  int64_t update_calls() const { return update_calls_; }

 private:
  Status Add(const std::vector<Record>& g) {
    received_.insert(received_.end(), g.begin(), g.end());
    return Status::Ok();
  }
  std::vector<Record> received_;
  int64_t update_calls_ = 0;
};

using MatrixParam = std::tuple<StrategyKind, uint64_t /*seed*/>;

class StrategyMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StrategyMatrixTest, CoreInvariantsHold) {
  auto [kind, seed] = GetParam();
  Rng rng(seed);
  StrategyParams params;
  params.flush_interval = 700;
  params.flush_size = 8;
  RecordingBackend backend;
  DpSyncEngine engine(MakeStrategy(kind, params, &rng), &backend,
                      workload::MakeTripDummyFactory(seed ^ 0xff), seed);

  // Initial database of 20 records.
  std::vector<Record> initial;
  for (int64_t i = 0; i < 20; ++i) {
    workload::TripRecord trip;
    trip.pick_time = 0;
    trip.pickup_id = i + 1;
    initial.push_back(trip.ToRecord());
  }
  ASSERT_TRUE(engine.Setup(std::move(initial)).ok());

  Rng arrivals(seed * 31 + 7);
  const int64_t horizon = 2100;
  for (int64_t t = 1; t <= horizon; ++t) {
    std::optional<Record> arrival;
    if (arrivals.Bernoulli(0.35)) {
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = arrivals.UniformInt(1, 265);
      arrival = trip.ToRecord();
    }
    ASSERT_TRUE(engine.Tick(std::move(arrival)).ok());

    // Invariant 1: conservation — every record the owner holds is either
    // still cached or was shipped as a real record.
    const auto& c = engine.counters();
    ASSERT_EQ(c.received_total + c.initial_size,
              c.real_synced + engine.logical_gap())
        << engine.strategy().name() << " at t=" << t;
  }

  // Invariant 2: the update pattern transcript exactly accounts for the
  // server's holdings.
  EXPECT_EQ(engine.update_pattern().total_volume(), backend.outsourced_count());
  EXPECT_EQ(engine.update_pattern().num_updates() - 1,  // minus setup event
            backend.update_calls());

  // Invariant 3: server holdings = real + dummy accounting.
  EXPECT_EQ(backend.outsourced_count(),
            engine.counters().real_synced + engine.counters().dummy_synced);

  // Invariant 4 (P3, order half): real records reach the server in FIFO
  // arrival order.
  int64_t last_time = -1;
  int64_t last_zone = -1;
  for (const auto& r : backend.received()) {
    if (r.is_dummy) continue;
    auto trip = workload::TripRecord::FromRecord(r);
    ASSERT_TRUE(trip.ok());
    if (trip->pick_time == 0) {
      // Initial DB: zones were assigned in increasing order.
      ASSERT_EQ(last_time, -1) << "initial records must precede stream";
      EXPECT_GT(trip->pickup_id, last_zone);
      last_zone = trip->pickup_id;
    } else {
      EXPECT_GT(trip->pick_time, last_time);
      last_time = trip->pick_time;
    }
  }

  // Invariant 5: every shipped record still decrypts/parses (payloads are
  // never corrupted by the pipeline).
  for (const auto& r : backend.received()) {
    EXPECT_TRUE(workload::TripRecord::FromRecord(r).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyMatrixTest,
    ::testing::Combine(::testing::Values(StrategyKind::kSur, StrategyKind::kOto,
                                         StrategyKind::kSet,
                                         StrategyKind::kDpTimer,
                                         StrategyKind::kDpAnt),
                       ::testing::Values(11u, 29u, 47u)));

// The analyst's view must converge once the stream stops (P3, eventual
// consistency) for every strategy that uploads at all (OTO excluded).
class ConvergenceTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(ConvergenceTest, QueriesConvergeAfterStreamEnds) {
  StrategyKind kind = GetParam();
  Rng rng(5);
  StrategyParams params;
  params.flush_interval = 300;
  params.flush_size = 10;
  RecordingBackend backend;
  DpSyncEngine engine(MakeStrategy(kind, params, &rng), &backend,
                      workload::MakeTripDummyFactory(6), 7);
  ASSERT_TRUE(engine.Setup({}).ok());

  query::Table logical;
  logical.name = "T";
  logical.schema = workload::TripSchema();

  Rng arrivals(8);
  for (int64_t t = 1; t <= 600; ++t) {
    std::optional<Record> arrival;
    if (arrivals.Bernoulli(0.4)) {
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = arrivals.UniformInt(1, 100);
      logical.rows.push_back(trip.ToRow());
      arrival = trip.ToRecord();
    }
    ASSERT_TRUE(engine.Tick(std::move(arrival)).ok());
  }
  // Quiet period long enough for flushes to drain any residue.
  for (int64_t t = 601; t <= 600 + 300 * 40; ++t) {
    ASSERT_TRUE(engine.Tick(std::nullopt).ok());
    if (engine.logical_gap() == 0) break;
  }
  ASSERT_EQ(engine.logical_gap(), 0) << StrategyKindName(kind);

  // Count real records on the "server" (dummy-aware view): must equal the
  // logical database exactly.
  query::Table server_view;
  server_view.name = "T";
  server_view.schema = workload::TripSchema();
  for (const auto& r : backend.received()) {
    auto row = query::DeserializeRow(r.payload);
    ASSERT_TRUE(row.ok());
    server_view.rows.push_back(std::move(row.value()));
  }
  query::Catalog catalog;
  catalog.AddTable(&server_view);
  query::Executor executor(&catalog);
  auto q = query::ParseSelect("SELECT COUNT(*) FROM T");
  auto rewritten = query::RewriteForDummies(q.value());
  auto server_count = executor.Execute(rewritten);
  ASSERT_TRUE(server_count.ok());
  EXPECT_DOUBLE_EQ(server_count->scalar,
                   static_cast<double>(logical.rows.size()));
}

INSTANTIATE_TEST_SUITE_P(Strategies, ConvergenceTest,
                         ::testing::Values(StrategyKind::kSur,
                                           StrategyKind::kSet,
                                           StrategyKind::kDpTimer,
                                           StrategyKind::kDpAnt));

// ------------------------------------------- float determinism property

// The vectorized knob's whole contract in one randomized property: fill
// tables with random float-heavy rows and the scalar and vectorized
// engines must agree bit-for-bit — answers AND, on Crypt-eps, the Laplace
// noise stream riding on them (both servers derive the same noise RNG
// from the master seed; any extra or reordered draw would desync it) —
// across engines x backends x shard counts. One cell exceeds 8192 rows so
// both engines cross the parallel-scan threshold and exercise the
// multi-chunk partial merge, where a reduction-order slip would surface
// as a last-ulp SUM/AVG difference.
TEST(VectorizedDeterminismTest, RandomChunkFillsBitIdenticalAcrossConfigs) {
  namespace fs = std::filesystem;
  struct Cell {
    edb::StorageBackendKind backend;
    int shards;
    int64_t rows;
  };
  const Cell cells[] = {
      // > kParallelScanThreshold: the fan-out path.
      {edb::StorageBackendKind::kInMemory, 1, 9000},
      {edb::StorageBackendKind::kInMemory, 4, 1500},
      {edb::StorageBackendKind::kSegmentLog, 1, 1200},
      {edb::StorageBackendKind::kSegmentLog, 4, 1200},
  };
  const std::vector<std::string> sqls = {
      "SELECT SUM(fare) FROM YellowCab",
      "SELECT AVG(fare) FROM YellowCab",
      "SELECT SUM(tripDistance) FROM YellowCab WHERE fare >= 30.0",
      "SELECT pickupID, SUM(fare) FROM YellowCab GROUP BY pickupID",
  };

  for (int engine = 0; engine < 2; ++engine) {
    for (size_t ci = 0; ci < std::size(cells); ++ci) {
      const Cell& cell = cells[ci];
      // Random chunk fill: irregular doubles make FP addition genuinely
      // non-associative, so any reordering shows.
      auto rng = testutil::MakeRng(1000 + 10 * ci + engine);
      std::vector<Record> records;
      records.reserve(static_cast<size_t>(cell.rows));
      for (int64_t i = 0; i < cell.rows; ++i) {
        workload::TripRecord trip;
        trip.pick_time = i;
        trip.pickup_id = rng.UniformInt(1, 40);
        trip.dropoff_id = rng.UniformInt(1, 40);
        trip.trip_distance = rng.UniformDouble() * 12.0;
        trip.fare = rng.UniformDouble() * 60.0;
        records.push_back(trip.ToRecord());
      }

      auto run = [&](bool vectorized) -> std::vector<query::QueryResult> {
        edb::StorageConfig storage;
        storage.backend = cell.backend;
        storage.num_shards = cell.shards;
        fs::path dir;
        if (cell.backend == edb::StorageBackendKind::kSegmentLog) {
          dir = fs::temp_directory_path() /
                ("dpsync-vecdet-" + std::to_string(engine) + "-" +
                 std::to_string(ci) + (vectorized ? "-vec" : "-scalar"));
          fs::remove_all(dir);
          storage.dir = dir.string();
        }
        std::unique_ptr<edb::EdbServer> server;
        if (engine == 0) {
          edb::ObliDbConfig cfg;
          cfg.master_seed = 20240807;
          cfg.storage = storage;
          cfg.materialized_views = false;  // measure the scan paths
          cfg.vectorized_execution = vectorized;
          server = std::make_unique<edb::ObliDbServer>(cfg);
        } else {
          edb::CryptEpsConfig cfg;
          cfg.master_seed = 20240807;
          cfg.storage = storage;
          cfg.materialized_views = false;
          cfg.vectorized_execution = vectorized;
          server = std::make_unique<edb::CryptEpsServer>(cfg);
        }
        auto table = server->CreateTable("YellowCab", workload::TripSchema());
        EXPECT_TRUE(table.ok());
        EXPECT_TRUE(table.value()->Setup(records).ok());
        auto session = server->CreateSession();
        std::vector<query::QueryResult> results;
        for (const auto& sql : sqls) {
          auto prepared = session->Prepare(sql);
          EXPECT_TRUE(prepared.ok()) << sql;
          // Repeated executions keep consuming the (Crypt-eps) noise
          // stream: positions 2 and 3 only match if position 1 drew the
          // exact same number of uniforms on both servers.
          for (int rep = 0; rep < 3; ++rep) {
            auto r = session->Execute(prepared.value());
            EXPECT_TRUE(r.ok()) << sql;
            results.push_back(r->result);
          }
        }
        session.reset();
        server.reset();
        if (!dir.empty()) fs::remove_all(dir);
        return results;
      };

      auto scalar = run(false);
      auto vectorized = run(true);
      ASSERT_EQ(scalar.size(), vectorized.size());
      for (size_t i = 0; i < scalar.size(); ++i) {
        const auto& s = scalar[i];
        const auto& v = vectorized[i];
        const std::string where = "engine " + std::to_string(engine) +
                                  " cell " + std::to_string(ci) +
                                  " result " + std::to_string(i);
        EXPECT_EQ(s.grouped, v.grouped) << where;
        EXPECT_EQ(s.scalar, v.scalar) << where;
        ASSERT_EQ(s.groups.size(), v.groups.size()) << where;
        auto it = v.groups.begin();
        for (const auto& [key, value] : s.groups) {
          EXPECT_EQ(key.Compare(it->first), 0) << where;
          EXPECT_EQ(value, it->second) << where;
          ++it;
        }
      }
    }
  }
}

// ---------------------------------------------- join determinism property

// The join knobs' whole contract in one randomized property: fill two
// tables with random float-heavy rows (heavy key collisions, dummies in
// the stream) and every combination of backend x shard count x
// snapshot_scans x parallel_joins must agree bit-for-bit with the locked
// serial reference — answers, grouped maps, AND the deterministic
// metrics (virtual QET, records_scanned, join_pairs). One cell exceeds
// 8192 probe rows so the parallel extraction and probe genuinely fan
// out, where a chunk-order slip would surface as a last-ulp SUM
// difference; the segment-log cells keep the default pair limit so the
// oblivious nested loop (COUNT) is swept across configs too.
TEST(JoinDeterminismTest, RandomJoinsBitIdenticalAcrossConfigs) {
  namespace fs = std::filesystem;
  struct Cell {
    edb::StorageBackendKind backend;
    int shards;
    int64_t probe_rows;
    int64_t build_rows;
    int64_t join_limit;  ///< 0 forces the hash path; -1 keeps the default
  };
  const Cell cells[] = {
      // > kParallelScanThreshold: the parallel extraction/probe path.
      {edb::StorageBackendKind::kInMemory, 1, 9000, 300, 0},
      {edb::StorageBackendKind::kInMemory, 4, 1500, 400, 0},
      {edb::StorageBackendKind::kSegmentLog, 1, 900, 200, -1},
      {edb::StorageBackendKind::kSegmentLog, 4, 900, 200, -1},
  };
  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime",
      "SELECT SUM(YellowCab.fare) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime WHERE "
      "YellowCab.tripDistance >= 6.0",
      "SELECT GreenTaxi.pickupID, SUM(YellowCab.fare) FROM YellowCab "
      "INNER JOIN GreenTaxi ON YellowCab.pickTime = GreenTaxi.pickTime "
      "GROUP BY GreenTaxi.pickupID",
  };

  struct Outcome {
    query::QueryResult result;
    double virtual_seconds;
    int64_t records_scanned;
    int64_t join_pairs;
  };

  for (size_t ci = 0; ci < std::size(cells); ++ci) {
    const Cell& cell = cells[ci];
    auto make_rows = [&](int64_t n, uint64_t salt) {
      auto rng = testutil::MakeRng(2000 + 10 * ci + salt);
      std::vector<Record> records;
      records.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        workload::TripRecord trip;
        trip.pick_time = rng.UniformInt(0, 50);  // heavy collisions
        trip.pickup_id = rng.UniformInt(1, 40);
        trip.dropoff_id = rng.UniformInt(1, 40);
        trip.trip_distance = rng.UniformDouble() * 12.0;
        trip.fare = rng.UniformDouble() * 60.0;
        trip.is_dummy = (i % 11 == 0);  // rewrite must filter these
        records.push_back(trip.ToRecord());
      }
      return records;
    };
    const auto probe = make_rows(cell.probe_rows, 1);
    const auto build = make_rows(cell.build_rows, 2);

    auto run = [&](bool snapshot, bool parallel) -> std::vector<Outcome> {
      edb::ObliDbConfig cfg;
      cfg.master_seed = 20260807;
      cfg.storage.backend = cell.backend;
      cfg.storage.num_shards = cell.shards;
      cfg.snapshot_scans = snapshot;
      cfg.parallel_joins = parallel;
      if (cell.join_limit >= 0) cfg.oblivious_join_limit = cell.join_limit;
      fs::path dir;
      if (cell.backend == edb::StorageBackendKind::kSegmentLog) {
        dir = fs::temp_directory_path() /
              ("dpsync-joindet-" + std::to_string(ci) +
               (snapshot ? "-snap" : "-lock") + (parallel ? "-par" : "-ser"));
        fs::remove_all(dir);
        cfg.storage.dir = dir.string();
      }
      std::vector<Outcome> outcomes;
      {
        edb::ObliDbServer server(cfg);
        auto yt = server.CreateTable("YellowCab", workload::TripSchema());
        EXPECT_TRUE(yt.ok());
        EXPECT_TRUE(yt.value()->Setup(probe).ok());
        auto gt = server.CreateTable("GreenTaxi", workload::TripSchema());
        EXPECT_TRUE(gt.ok());
        EXPECT_TRUE(gt.value()->Setup(build).ok());
        auto session = server.CreateSession();
        for (const auto& sql : sqls) {
          auto prepared = session->Prepare(sql);
          EXPECT_TRUE(prepared.ok()) << sql;
          auto r = session->Execute(prepared.value());
          EXPECT_TRUE(r.ok()) << sql;
          outcomes.push_back({r->result, r->stats.virtual_seconds,
                              r->stats.records_scanned,
                              r->stats.join_pairs});
        }
        // The lock-free path must actually engage (or stay out) per knob.
        EXPECT_EQ(server.stats().snapshot_joins,
                  snapshot ? static_cast<int64_t>(sqls.size()) : 0);
      }
      if (!dir.empty()) fs::remove_all(dir);
      return outcomes;
    };

    const auto reference = run(false, false);  // locked serial
    for (bool snapshot : {false, true}) {
      for (bool parallel : {false, true}) {
        if (!snapshot && !parallel) continue;
        auto got = run(snapshot, parallel);
        ASSERT_EQ(got.size(), reference.size());
        for (size_t i = 0; i < got.size(); ++i) {
          const std::string where =
              "cell " + std::to_string(ci) + " sql " + std::to_string(i) +
              (snapshot ? " snap" : " lock") + (parallel ? " par" : " ser");
          EXPECT_EQ(reference[i].result.grouped, got[i].result.grouped)
              << where;
          EXPECT_EQ(reference[i].result.scalar, got[i].result.scalar)
              << where;
          EXPECT_EQ(reference[i].result.groups, got[i].result.groups)
              << where;
          EXPECT_EQ(reference[i].virtual_seconds, got[i].virtual_seconds)
              << where;
          EXPECT_EQ(reference[i].records_scanned, got[i].records_scanned)
              << where;
          EXPECT_EQ(reference[i].join_pairs, got[i].join_pairs) << where;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dpsync
