/// \file test_util.h
/// Shared helpers for the dpsync test suites: deterministic RNG seeding,
/// record/dummy factories, and Status assertion macros. Keep suite-specific
/// fixtures in their own files; only genuinely cross-suite helpers live here.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/record.h"
#include "workload/trip_record.h"

namespace dpsync::testutil {

/// Base seed for deterministic tests. Derive per-case RNGs with MakeRng(salt)
/// so two helpers in one test never share a stream.
inline constexpr uint64_t kTestSeed = 42;

inline Rng MakeRng(uint64_t salt = 0) { return Rng(kTestSeed + salt); }

/// Effective vectorized-execution setting for suites whose servers should
/// honor the CI A/B knob: DPSYNC_VECTORIZED=0 pins the scalar reference
/// path, anything else (or unset) keeps the default columnar batch path.
/// Answers are bit-identical either way — the TSan job runs the racing
/// suites under both values so each engine's reads race real appends.
inline bool EnvVectorized() {
  const char* v = std::getenv("DPSYNC_VECTORIZED");
  return v == nullptr || v[0] != '0';
}

/// Decodes a hex string, failing the current test on malformed input.
inline Bytes Hex(const std::string& h) {
  Bytes b;
  EXPECT_TRUE(FromHex(h, &b)) << "bad hex literal: " << h;
  return b;
}

/// Minimal opaque record whose payload encodes `id` (little-endian 16-bit).
inline Record MakeRecord(int64_t id) {
  Record r;
  r.payload = Bytes{static_cast<uint8_t>(id), static_cast<uint8_t>(id >> 8)};
  return r;
}

/// Fixed-payload dummy factory for cache/engine tests that never decode
/// payloads. Workload-faithful suites should prefer
/// workload::MakeTripDummyFactory.
inline DummyFactory TestDummyFactory() {
  return [] {
    Record r;
    r.payload = Bytes{0xdd};
    r.is_dummy = true;
    return r;
  };
}

/// Schema-valid taxi trip record arriving at time `t` in zone `zone`.
inline Record Trip(int64_t t, int64_t zone, bool dummy = false) {
  workload::TripRecord trip;
  trip.pick_time = t;
  trip.pickup_id = zone;
  trip.dropoff_id = zone;
  trip.trip_distance = 1.0;
  trip.fare = 5.0;
  trip.is_dummy = dummy;
  return trip.ToRecord();
}

namespace internal {
inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
const Status& ToStatus(const StatusOr<T>& s) {
  return s.status();
}
}  // namespace internal

}  // namespace dpsync::testutil

/// Assert that a Status or StatusOr expression is OK; on failure, print the
/// status rendering. ASSERT_OK aborts the test, EXPECT_OK continues.
#define ASSERT_OK(expr)                                          \
  do {                                                           \
    const auto& dpsync_st_ = (expr);                             \
    ASSERT_TRUE(::dpsync::testutil::internal::ToStatus(dpsync_st_).ok()) \
        << #expr << " = "                                        \
        << ::dpsync::testutil::internal::ToStatus(dpsync_st_).ToString(); \
  } while (0)

#define EXPECT_OK(expr)                                          \
  do {                                                           \
    const auto& dpsync_st_ = (expr);                             \
    EXPECT_TRUE(::dpsync::testutil::internal::ToStatus(dpsync_st_).ok()) \
        << #expr << " = "                                        \
        << ::dpsync::testutil::internal::ToStatus(dpsync_st_).ToString(); \
  } while (0)

/// Expect that a Status or StatusOr expression is an error.
#define EXPECT_NOT_OK(expr)                                      \
  EXPECT_FALSE(::dpsync::testutil::internal::ToStatus(expr).ok())
