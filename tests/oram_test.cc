// Path ORAM tests: functional correctness, capacity handling, stash
// behaviour, and the statistical obliviousness property (leaf-access
// distribution independent of the logical access pattern) — for both the
// single tree and the sharded OramMirror built on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/bytes.h"
#include "common/shard_router.h"
#include "edb/leakage.h"
#include "oram/oram_mirror.h"
#include "oram/path_oram.h"
#include "oram/sharded_oram_mirror.h"

namespace dpsync::oram {
namespace {

Bytes Payload(uint64_t id) {
  Bytes b(16, 0);
  StoreLE64(b.data(), id * 1000003);
  return b;
}

PathOram::Config SmallConfig(bool trace = false) {
  PathOram::Config cfg;
  cfg.capacity = 256;
  cfg.seed = 11;
  cfg.record_trace = trace;
  return cfg;
}

TEST(PathOramTest, WriteThenRead) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(1, Payload(1)).ok());
  auto r = oram.Read(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Payload(1));
}

TEST(PathOramTest, OverwriteReplacesValue) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(1, Payload(1)).ok());
  ASSERT_TRUE(oram.Write(1, Payload(99)).ok());
  EXPECT_EQ(oram.Read(1).value(), Payload(99));
  EXPECT_EQ(oram.size(), 1u);
}

TEST(PathOramTest, ReadMissingIsNotFound) {
  PathOram oram(SmallConfig());
  EXPECT_EQ(oram.Read(42).status().code(), StatusCode::kNotFound);
}

TEST(PathOramTest, RemoveDeletes) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(7, Payload(7)).ok());
  ASSERT_TRUE(oram.Remove(7).ok());
  EXPECT_FALSE(oram.Read(7).ok());
  EXPECT_EQ(oram.size(), 0u);
}

TEST(PathOramTest, RemoveMissingFails) {
  PathOram oram(SmallConfig());
  EXPECT_FALSE(oram.Remove(7).ok());
}

TEST(PathOramTest, ReservedIdRejected) {
  PathOram oram(SmallConfig());
  EXPECT_FALSE(oram.Write(OramBlock::kInvalidId, Payload(0)).ok());
}

TEST(PathOramTest, CapacityEnforced) {
  PathOram::Config cfg;
  cfg.capacity = 8;
  cfg.seed = 3;
  PathOram oram(cfg);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok()) << i;
  }
  EXPECT_EQ(oram.Write(100, Payload(100)).code(), StatusCode::kOutOfRange);
  // Overwriting an existing block is still allowed at capacity.
  EXPECT_TRUE(oram.Write(3, Payload(33)).ok());
}

TEST(PathOramTest, ManyBlocksAllRecoverable) {
  PathOram::Config cfg;
  cfg.capacity = 2048;
  cfg.seed = 17;
  PathOram oram(cfg);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok()) << i;
  }
  EXPECT_EQ(oram.size(), 2000u);
  for (uint64_t i = 0; i < 2000; i += 37) {
    auto r = oram.Read(i);
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(r.value(), Payload(i)) << i;
  }
}

TEST(PathOramTest, StashStaysSmall) {
  PathOram::Config cfg;
  cfg.capacity = 1024;
  cfg.seed = 23;
  PathOram oram(cfg);
  Rng rng(5);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok());
  }
  for (int i = 0; i < 5000; ++i) {
    uint64_t id = static_cast<uint64_t>(rng.UniformInt(0, 999));
    ASSERT_TRUE(oram.Read(id).ok());
  }
  // Theory: stash exceeds ~O(log N) with negligible probability for Z=4.
  EXPECT_LT(oram.max_stash_size(), 120u);
}

TEST(PathOramTest, AccessCountTracksOperations) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(1, Payload(1)).ok());
  ASSERT_TRUE(oram.Read(1).ok());
  ASSERT_TRUE(oram.Remove(1).ok());
  EXPECT_EQ(oram.access_count(), 3);
}

// Obliviousness: the observable leaf sequence must look uniform regardless
// of the logical access pattern. We access a *single hot block* repeatedly
// and check that the touched leaves cover the leaf range near-uniformly
// (chi-squared against uniform, loose bound).
TEST(PathOramTest, HotBlockAccessLeavesLookUniform) {
  auto cfg = SmallConfig(/*trace=*/true);
  PathOram oram(cfg);
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok());
  }
  const int kAccesses = 20000;
  for (int i = 0; i < kAccesses; ++i) {
    ASSERT_TRUE(oram.Read(7).ok());
  }
  // Count leaf frequencies over the trailing accesses.
  std::map<uint64_t, int> freq;
  const auto& trace = oram.trace();
  size_t start = trace.size() - kAccesses;
  for (size_t i = start; i < trace.size(); ++i) freq[trace[i].leaf]++;
  double expected = static_cast<double>(kAccesses) /
                    static_cast<double>(oram.num_leaves());
  double chi2 = 0;
  for (uint64_t leaf = 0; leaf < oram.num_leaves(); ++leaf) {
    double observed = static_cast<double>(freq[leaf]);
    chi2 += (observed - expected) * (observed - expected) / expected;
  }
  // dof = num_leaves - 1 = 255; 99.9th percentile ~ 340.
  EXPECT_LT(chi2, 360.0);
}

// Two very different logical workloads must induce statistically similar
// observable traces (here: mean leaf value close to the uniform mean).
TEST(PathOramTest, TraceIndependentOfWorkload) {
  auto run = [](bool sequential) {
    auto cfg = SmallConfig(/*trace=*/true);
    cfg.seed = 777;
    PathOram oram(cfg);
    for (uint64_t i = 0; i < 128; ++i) {
      EXPECT_TRUE(oram.Write(i, Payload(i)).ok());
    }
    Rng rng(31);
    for (int i = 0; i < 8000; ++i) {
      uint64_t id = sequential ? static_cast<uint64_t>(i % 128)
                               : static_cast<uint64_t>(rng.UniformInt(0, 7));
      EXPECT_TRUE(oram.Read(id).ok());
    }
    double sum = 0;
    for (const auto& a : oram.trace()) sum += static_cast<double>(a.leaf);
    return sum / static_cast<double>(oram.trace().size());
  };
  double mean_seq = run(true);
  double mean_hot = run(false);
  double uniform_mean = (256.0 - 1.0) / 2.0;  // leaves 0..255
  EXPECT_NEAR(mean_seq, uniform_mean, 4.0);
  EXPECT_NEAR(mean_hot, uniform_mean, 4.0);
}

// ------------------------------------------------------------ OramMirror

/// A distinct record identity per id (routing input; never stored).
Bytes Identity(uint64_t id) {
  Bytes b(24, 0);
  StoreLE64(b.data(), id);
  StoreLE64(b.data() + 8, id * 0x9e3779b97f4a7c15ULL);
  return b;
}

OramMirrorConfig MirrorConfig(int shards, bool trace = false) {
  OramMirrorConfig cfg;
  cfg.capacity = 256;
  cfg.num_shards = shards;
  cfg.master_seed = 2027;
  cfg.record_trace = trace;
  return cfg;
}

TEST(OramMirrorTest, FactoryPicksImplementationByTopology) {
  auto single = MakeOramMirror(MirrorConfig(1));
  auto sharded = MakeOramMirror(MirrorConfig(4));
  EXPECT_EQ(single->num_shards(), 1);
  EXPECT_NE(dynamic_cast<PathOram*>(single.get()), nullptr);
  EXPECT_EQ(sharded->num_shards(), 4);
  EXPECT_NE(dynamic_cast<ShardedOramMirror*>(sharded.get()), nullptr);
}

TEST(OramMirrorTest, CapacitySplitsCeilOverShards) {
  OramMirrorConfig cfg = MirrorConfig(4);
  cfg.capacity = 1023;  // ceil(1023/4) = 256 per shard
  auto mirror = MakeOramMirror(cfg);
  EXPECT_EQ(mirror->capacity(), 1024u);
  for (int s = 0; s < 4; ++s) {
    // 256-capacity trees: 256 leaves, 9 buckets per path.
    EXPECT_EQ(mirror->ShardLeaves(s), 256u);
    EXPECT_EQ(mirror->ShardLevels(s), 9u);
  }
}

TEST(OramMirrorTest, ShardSeedsAreDistinctAndDeterministic) {
  EXPECT_EQ(DeriveOramShardSeed(7, 0), DeriveOramShardSeed(7, 0));
  EXPECT_NE(DeriveOramShardSeed(7, 0), DeriveOramShardSeed(7, 1));
  EXPECT_NE(DeriveOramShardSeed(7, 0), DeriveOramShardSeed(8, 0));
}

TEST(OramMirrorTest, RoutesByTheSameFnv1aIdentityAsShardRouter) {
  auto mirror = MakeOramMirror(MirrorConfig(4));
  ShardRouter router(4);
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(mirror->ShardOf(Identity(id)), router.Route(Identity(id)))
        << id;
  }
}

TEST(ShardedOramMirrorTest, RoundTripAcrossShards) {
  auto mirror = MakeOramMirror(MirrorConfig(4));
  for (uint64_t id = 0; id < 200; ++id) {
    ASSERT_TRUE(mirror->Mirror(id, Identity(id), Payload(id)).ok()) << id;
  }
  EXPECT_EQ(mirror->size(), 200u);
  for (uint64_t id = 0; id < 200; ++id) {
    auto r = mirror->Read(id);
    ASSERT_TRUE(r.ok()) << id;
    EXPECT_EQ(r.value(), Payload(id)) << id;
  }
  // Blocks landed in the tree their identity routes to.
  ShardRouter router(4);
  int64_t total_accesses = 0;
  for (int s = 0; s < 4; ++s) total_accesses += mirror->ShardAccessCount(s);
  EXPECT_EQ(total_accesses, 400);  // 200 writes + 200 reads
  for (uint64_t id = 0; id < 200; ++id) {
    int shard = router.Route(Identity(id));
    EXPECT_GT(mirror->ShardAccessCount(shard), 0) << id;
  }
}

TEST(ShardedOramMirrorTest, TouchRemoveAndMissingIds) {
  auto mirror = MakeOramMirror(MirrorConfig(4));
  ASSERT_TRUE(mirror->Mirror(5, Identity(5), Payload(5)).ok());
  EXPECT_TRUE(mirror->Touch(5).ok());
  EXPECT_EQ(mirror->Touch(6).code(), StatusCode::kNotFound);
  ASSERT_TRUE(mirror->Remove(5).ok());
  EXPECT_EQ(mirror->size(), 0u);
  EXPECT_EQ(mirror->Read(5).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mirror->Remove(5).code(), StatusCode::kNotFound);
}

TEST(ShardedOramMirrorTest, MirrorBatchMatchesSingleWrites) {
  auto batched = MakeOramMirror(MirrorConfig(4));
  auto single = MakeOramMirror(MirrorConfig(4));
  std::vector<Bytes> identities;
  for (uint64_t id = 0; id < 100; ++id) identities.push_back(Identity(id));
  std::vector<OramMirror::MirrorEntry> entries;
  for (uint64_t id = 0; id < 100; ++id) {
    entries.push_back({id, &identities[id], Payload(id)});
    ASSERT_TRUE(single->Mirror(id, identities[id], Payload(id)).ok());
  }
  auto routes = batched->MirrorBatch(std::move(entries));
  ASSERT_TRUE(routes.ok());
  ASSERT_EQ(routes.value().size(), 100u);
  ShardRouter reference(4);
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(routes.value()[id], reference.Route(identities[id])) << id;
  }
  EXPECT_EQ(batched->size(), single->size());
  for (uint64_t id = 0; id < 100; ++id) {
    auto a = batched->Read(id);
    auto b = single->Read(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << id;
  }
}

TEST(ShardedOramMirrorTest, BatchOverflowLeavesConsistentState) {
  // Overfill a tiny mirror: ceil(12/4) = 3 blocks per tree, 64 entries —
  // every tree overflows. The batch must fail with OutOfRange and the
  // mirror must stay consistent: size() only counts blocks a tree really
  // holds, and failed ids are absent (NotFound), not half-registered.
  OramMirrorConfig cfg = MirrorConfig(4);
  cfg.capacity = 12;
  auto mirror = MakeOramMirror(cfg);
  std::vector<Bytes> identities;
  for (uint64_t id = 0; id < 64; ++id) identities.push_back(Identity(id));
  std::vector<OramMirror::MirrorEntry> entries;
  for (uint64_t id = 0; id < 64; ++id) {
    entries.push_back({id, &identities[id], Payload(id)});
  }
  auto routed = mirror->MirrorBatch(std::move(entries));
  EXPECT_EQ(routed.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(mirror->size(), 12u);
  size_t readable = 0;
  for (uint64_t id = 0; id < 64; ++id) {
    auto r = mirror->Read(id);
    if (r.ok()) {
      ++readable;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kNotFound) << id;
    }
  }
  EXPECT_EQ(readable, 12u);
}

TEST(ShardedOramMirrorTest, StashStatsAggregateAcrossTrees) {
  auto mirror = MakeOramMirror(MirrorConfig(4));
  for (uint64_t id = 0; id < 128; ++id) {
    ASSERT_TRUE(mirror->Mirror(id, Identity(id), Payload(id)).ok());
  }
  auto stats = mirror->StashStats();
  EXPECT_EQ(stats.live_blocks, 128u);
  EXPECT_EQ(stats.access_count, 128);
  size_t max_over_shards = 0;
  for (int s = 0; s < 4; ++s) {
    max_over_shards = std::max(max_over_shards, mirror->ShardMaxStash(s));
  }
  EXPECT_EQ(stats.max_stash_size, max_over_shards);
}

// The acceptance property for the per-shard refactor: each shard's
// observable transcript — aggregated the same way the leakage layer does —
// must be uniform over that shard's own leaves, for both the single global
// tree and the sharded topology. Per-shard trees must not leak more than
// the tree they replaced.
TEST(ShardedOramMirrorTest, PerShardTranscriptsUniformOverLeaves) {
  for (int shards : {1, 4}) {
    auto mirror = MakeOramMirror(MirrorConfig(shards, /*trace=*/true));
    const uint64_t kBlocks = 128;
    for (uint64_t id = 0; id < kBlocks; ++id) {
      ASSERT_TRUE(mirror->Mirror(id, Identity(id), Payload(id)).ok());
    }
    // A deliberately skewed logical workload: round-robin sweeps plus a
    // hot block, the access mix an indexed scan + point lookups produces.
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(mirror->Touch(static_cast<uint64_t>(i) % kBlocks).ok());
      if (i % 4 == 0) ASSERT_TRUE(mirror->Touch(7).ok());
    }
    auto transcripts = edb::AggregateOramTranscripts(*mirror);
    ASSERT_EQ(transcripts.size(), static_cast<size_t>(shards));
    for (const auto& t : transcripts) {
      ASSERT_GT(t.accesses, 0) << "shard " << t.shard;
      ASSERT_EQ(t.leaf_counts.size(), t.num_leaves);
      // Chi-squared against uniform with dof = leaves - 1; the bound is
      // mean + 5 sigma (sigma = sqrt(2 dof)), far past the 99.9th
      // percentile yet tight enough to catch any leaf bias.
      double dof = static_cast<double>(t.num_leaves) - 1.0;
      EXPECT_LT(t.chi2_uniform, dof + 5.0 * std::sqrt(2.0 * dof))
          << "shards=" << shards << " shard=" << t.shard;
    }
  }
}

class OramSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OramSizeTest, FillDrainRoundTrip) {
  PathOram::Config cfg;
  cfg.capacity = GetParam();
  cfg.seed = GetParam() * 7 + 1;
  PathOram oram(cfg);
  size_t n = cfg.capacity;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok());
  }
  for (uint64_t i = 0; i < n; ++i) {
    auto r = oram.Read(i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), Payload(i));
  }
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(oram.Remove(i).ok());
  }
  EXPECT_EQ(oram.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, OramSizeTest,
                         ::testing::Values(2, 4, 16, 100, 512, 1000));

}  // namespace
}  // namespace dpsync::oram
