// Path ORAM tests: functional correctness, capacity handling, stash
// behaviour, and the statistical obliviousness property (leaf-access
// distribution independent of the logical access pattern).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/bytes.h"
#include "oram/path_oram.h"

namespace dpsync::oram {
namespace {

Bytes Payload(uint64_t id) {
  Bytes b(16, 0);
  StoreLE64(b.data(), id * 1000003);
  return b;
}

PathOram::Config SmallConfig(bool trace = false) {
  PathOram::Config cfg;
  cfg.capacity = 256;
  cfg.seed = 11;
  cfg.record_trace = trace;
  return cfg;
}

TEST(PathOramTest, WriteThenRead) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(1, Payload(1)).ok());
  auto r = oram.Read(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Payload(1));
}

TEST(PathOramTest, OverwriteReplacesValue) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(1, Payload(1)).ok());
  ASSERT_TRUE(oram.Write(1, Payload(99)).ok());
  EXPECT_EQ(oram.Read(1).value(), Payload(99));
  EXPECT_EQ(oram.size(), 1u);
}

TEST(PathOramTest, ReadMissingIsNotFound) {
  PathOram oram(SmallConfig());
  EXPECT_EQ(oram.Read(42).status().code(), StatusCode::kNotFound);
}

TEST(PathOramTest, RemoveDeletes) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(7, Payload(7)).ok());
  ASSERT_TRUE(oram.Remove(7).ok());
  EXPECT_FALSE(oram.Read(7).ok());
  EXPECT_EQ(oram.size(), 0u);
}

TEST(PathOramTest, RemoveMissingFails) {
  PathOram oram(SmallConfig());
  EXPECT_FALSE(oram.Remove(7).ok());
}

TEST(PathOramTest, ReservedIdRejected) {
  PathOram oram(SmallConfig());
  EXPECT_FALSE(oram.Write(OramBlock::kInvalidId, Payload(0)).ok());
}

TEST(PathOramTest, CapacityEnforced) {
  PathOram::Config cfg;
  cfg.capacity = 8;
  cfg.seed = 3;
  PathOram oram(cfg);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok()) << i;
  }
  EXPECT_EQ(oram.Write(100, Payload(100)).code(), StatusCode::kOutOfRange);
  // Overwriting an existing block is still allowed at capacity.
  EXPECT_TRUE(oram.Write(3, Payload(33)).ok());
}

TEST(PathOramTest, ManyBlocksAllRecoverable) {
  PathOram::Config cfg;
  cfg.capacity = 2048;
  cfg.seed = 17;
  PathOram oram(cfg);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok()) << i;
  }
  EXPECT_EQ(oram.size(), 2000u);
  for (uint64_t i = 0; i < 2000; i += 37) {
    auto r = oram.Read(i);
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(r.value(), Payload(i)) << i;
  }
}

TEST(PathOramTest, StashStaysSmall) {
  PathOram::Config cfg;
  cfg.capacity = 1024;
  cfg.seed = 23;
  PathOram oram(cfg);
  Rng rng(5);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok());
  }
  for (int i = 0; i < 5000; ++i) {
    uint64_t id = static_cast<uint64_t>(rng.UniformInt(0, 999));
    ASSERT_TRUE(oram.Read(id).ok());
  }
  // Theory: stash exceeds ~O(log N) with negligible probability for Z=4.
  EXPECT_LT(oram.max_stash_size(), 120u);
}

TEST(PathOramTest, AccessCountTracksOperations) {
  PathOram oram(SmallConfig());
  ASSERT_TRUE(oram.Write(1, Payload(1)).ok());
  ASSERT_TRUE(oram.Read(1).ok());
  ASSERT_TRUE(oram.Remove(1).ok());
  EXPECT_EQ(oram.access_count(), 3);
}

// Obliviousness: the observable leaf sequence must look uniform regardless
// of the logical access pattern. We access a *single hot block* repeatedly
// and check that the touched leaves cover the leaf range near-uniformly
// (chi-squared against uniform, loose bound).
TEST(PathOramTest, HotBlockAccessLeavesLookUniform) {
  auto cfg = SmallConfig(/*trace=*/true);
  PathOram oram(cfg);
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok());
  }
  const int kAccesses = 20000;
  for (int i = 0; i < kAccesses; ++i) {
    ASSERT_TRUE(oram.Read(7).ok());
  }
  // Count leaf frequencies over the trailing accesses.
  std::map<uint64_t, int> freq;
  const auto& trace = oram.trace();
  size_t start = trace.size() - kAccesses;
  for (size_t i = start; i < trace.size(); ++i) freq[trace[i].leaf]++;
  double expected = static_cast<double>(kAccesses) /
                    static_cast<double>(oram.num_leaves());
  double chi2 = 0;
  for (uint64_t leaf = 0; leaf < oram.num_leaves(); ++leaf) {
    double observed = static_cast<double>(freq[leaf]);
    chi2 += (observed - expected) * (observed - expected) / expected;
  }
  // dof = num_leaves - 1 = 255; 99.9th percentile ~ 340.
  EXPECT_LT(chi2, 360.0);
}

// Two very different logical workloads must induce statistically similar
// observable traces (here: mean leaf value close to the uniform mean).
TEST(PathOramTest, TraceIndependentOfWorkload) {
  auto run = [](bool sequential) {
    auto cfg = SmallConfig(/*trace=*/true);
    cfg.seed = 777;
    PathOram oram(cfg);
    for (uint64_t i = 0; i < 128; ++i) {
      EXPECT_TRUE(oram.Write(i, Payload(i)).ok());
    }
    Rng rng(31);
    for (int i = 0; i < 8000; ++i) {
      uint64_t id = sequential ? static_cast<uint64_t>(i % 128)
                               : static_cast<uint64_t>(rng.UniformInt(0, 7));
      EXPECT_TRUE(oram.Read(id).ok());
    }
    double sum = 0;
    for (const auto& a : oram.trace()) sum += static_cast<double>(a.leaf);
    return sum / static_cast<double>(oram.trace().size());
  };
  double mean_seq = run(true);
  double mean_hot = run(false);
  double uniform_mean = (256.0 - 1.0) / 2.0;  // leaves 0..255
  EXPECT_NEAR(mean_seq, uniform_mean, 4.0);
  EXPECT_NEAR(mean_hot, uniform_mean, 4.0);
}

class OramSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OramSizeTest, FillDrainRoundTrip) {
  PathOram::Config cfg;
  cfg.capacity = GetParam();
  cfg.seed = GetParam() * 7 + 1;
  PathOram oram(cfg);
  size_t n = cfg.capacity;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(oram.Write(i, Payload(i)).ok());
  }
  for (uint64_t i = 0; i < n; ++i) {
    auto r = oram.Read(i);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), Payload(i));
  }
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(oram.Remove(i).ok());
  }
  EXPECT_EQ(oram.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, OramSizeTest,
                         ::testing::Values(2, 4, 16, 100, 512, 1000));

}  // namespace
}  // namespace dpsync::oram
