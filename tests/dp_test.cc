// Tests for the DP substrate: Laplace/geometric mechanisms, sparse vector,
// composition accounting, and the Table-4 pattern simulators — including
// empirical differential-privacy distinguisher tests that estimate the
// privacy loss of released update patterns on neighboring streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "dp/accountant.h"
#include "dp/laplace.h"
#include "dp/mechanisms.h"
#include "dp/svt.h"

namespace dpsync::dp {
namespace {

TEST(LaplaceMechanismTest, NoiseIsCentered) {
  LaplaceMechanism mech(1.0);
  Rng rng(1);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.Add(mech.Perturb(10.0, &rng) - 10.0);
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 2.0, 0.1);  // Var = 2 (1/eps)^2 = 2
}

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  LaplaceMechanism mech(0.5, 2.0);
  EXPECT_DOUBLE_EQ(mech.scale(), 4.0);
}

TEST(LaplaceMechanismTest, PerturbCountRounds) {
  LaplaceMechanism mech(1000.0);  // nearly no noise
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(mech.PerturbCount(7, &rng), 7);
}

TEST(LaplaceMechanismTest, TailProbability) {
  EXPECT_NEAR(LaplaceMechanism::TailProbability(1.0, 2.0), std::exp(-2.0),
              1e-12);
  EXPECT_DOUBLE_EQ(LaplaceMechanism::TailProbability(1.0, 0.0), 1.0);
}

// Empirical DP check: the likelihood ratio of observing any output bucket
// under neighboring inputs c and c+1 must be bounded by e^eps (within
// sampling error). This is the standard histogram-based DP distinguisher.
class LaplaceDpTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceDpTest, HistogramLikelihoodRatioBounded) {
  const double eps = GetParam();
  LaplaceMechanism mech(eps);
  Rng rng(42);
  const int n = 400000;
  std::map<int64_t, int> hist_a, hist_b;
  for (int i = 0; i < n; ++i) hist_a[mech.PerturbCount(10, &rng)]++;
  for (int i = 0; i < n; ++i) hist_b[mech.PerturbCount(11, &rng)]++;
  // Only consider buckets with enough mass for a stable ratio estimate.
  for (const auto& [bucket, count_a] : hist_a) {
    auto it = hist_b.find(bucket);
    if (it == hist_b.end()) continue;
    int count_b = it->second;
    if (count_a < 500 || count_b < 500) continue;
    double ratio = static_cast<double>(count_a) / count_b;
    EXPECT_LE(ratio, std::exp(eps) * 1.15) << "bucket " << bucket;
    EXPECT_GE(ratio, std::exp(-eps) / 1.15) << "bucket " << bucket;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, LaplaceDpTest,
                         ::testing::Values(0.25, 0.5, 1.0));

TEST(GeometricMechanismTest, UnbiasedAndInteger) {
  GeometricMechanism mech(1.0);
  Rng rng(3);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) {
    s.Add(static_cast<double>(mech.PerturbCount(5, &rng)));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
}

TEST(GeometricMechanismTest, SmallerEpsilonMoreNoise) {
  Rng rng(4);
  GeometricMechanism tight(2.0), loose(0.2);
  RunningStat st, sl;
  for (int i = 0; i < 50000; ++i) {
    st.Add(std::fabs(static_cast<double>(tight.PerturbCount(0, &rng))));
    sl.Add(std::fabs(static_cast<double>(loose.PerturbCount(0, &rng))));
  }
  EXPECT_LT(st.mean(), sl.mean());
}

TEST(ValidateEpsilonTest, AcceptsPositive) {
  EXPECT_TRUE(ValidateEpsilon(0.5).ok());
}

TEST(ValidateEpsilonTest, RejectsNonPositiveAndNonFinite) {
  EXPECT_FALSE(ValidateEpsilon(0.0).ok());
  EXPECT_FALSE(ValidateEpsilon(-1.0).ok());
  EXPECT_FALSE(ValidateEpsilon(std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(ValidateEpsilon(std::nan("")).ok());
}

// ------------------------------------------------------------------- SVT

TEST(SvtTest, HighCountExceeds) {
  Rng rng(5);
  AboveNoisyThreshold svt(10.0, 1.0, &rng);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) hits += svt.Exceeds(100, &rng);
  EXPECT_GT(hits, 990);  // far above threshold: nearly always fires
}

TEST(SvtTest, LowCountRarelyExceeds) {
  Rng rng(6);
  AboveNoisyThreshold svt(100.0, 1.0, &rng);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) hits += svt.Exceeds(0, &rng);
  EXPECT_LT(hits, 10);
}

TEST(SvtTest, ResetRedrawsThreshold) {
  Rng rng(7);
  AboveNoisyThreshold svt(10.0, 1.0, &rng);
  double t1 = svt.noisy_threshold();
  svt.Reset(&rng);
  EXPECT_NE(t1, svt.noisy_threshold());
  EXPECT_DOUBLE_EQ(svt.threshold(), 10.0);
}

TEST(SvtTest, FiringProbabilityMonotoneInCount) {
  Rng rng(8);
  AboveNoisyThreshold svt(20.0, 0.5, &rng);
  auto fire_rate = [&](int64_t c) {
    int hits = 0;
    for (int i = 0; i < 4000; ++i) hits += svt.Exceeds(c, &rng);
    return hits / 4000.0;
  };
  double lo = fire_rate(5), mid = fire_rate(20), hi = fire_rate(35);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
}

// ------------------------------------------------------------ Accountant

TEST(AccountantTest, SequentialAddsWithinGroup) {
  PrivacyAccountant acc;
  acc.Charge("g", 0.3, Composition::kSequential);
  acc.Charge("g", 0.2, Composition::kSequential);
  EXPECT_DOUBLE_EQ(acc.GroupEpsilon("g"), 0.5);
}

TEST(AccountantTest, ParallelTakesMaxWithinGroup) {
  PrivacyAccountant acc;
  acc.Charge("g", 0.3, Composition::kParallel);
  acc.Charge("g", 0.5, Composition::kParallel);
  EXPECT_DOUBLE_EQ(acc.GroupEpsilon("g"), 0.5);
}

TEST(AccountantTest, MixedComposition) {
  PrivacyAccountant acc;
  acc.Charge("g", 0.3, Composition::kSequential);
  acc.Charge("g", 0.5, Composition::kParallel);
  acc.Charge("g", 0.4, Composition::kParallel);
  EXPECT_DOUBLE_EQ(acc.GroupEpsilon("g"), 0.8);  // 0.3 + max(0.5, 0.4)
}

TEST(AccountantTest, CrossGroupTotals) {
  PrivacyAccountant acc;
  acc.Charge("setup", 0.5, Composition::kSequential);
  acc.Charge("updates", 0.5, Composition::kParallel);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilonParallel(), 0.5);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilonSequential(), 1.0);
}

TEST(AccountantTest, DpTimerCompositionMatchesTheorem10) {
  // M_timer = M_setup (eps, disjoint D_0) + M_unit windows (eps each,
  // disjoint) + M_flush (0-DP): total guarantee is eps under parallel
  // composition across the disjoint partitions.
  const double eps = 0.5;
  PrivacyAccountant acc;
  acc.Charge("setup", eps, Composition::kParallel);
  for (int window = 0; window < 10; ++window) {
    acc.Charge("window", eps, Composition::kParallel);
  }
  acc.Charge("flush", 0.0, Composition::kSequential);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilonParallel(), eps);
}

TEST(AccountantTest, ResetClears) {
  PrivacyAccountant acc;
  acc.Charge("g", 1.0, Composition::kSequential);
  acc.Reset();
  EXPECT_EQ(acc.num_charges(), 0u);
  EXPECT_DOUBLE_EQ(acc.GroupEpsilon("g"), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilonSequential(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilonParallel(), 0.0);
}

TEST(AccountantTest, CachedTotalsMatchNaiveRecomputeOver100kCharges) {
  // Regression guard for the running-total cache: replay a large
  // pseudo-random charge stream into the accountant while keeping the full
  // ledger here, then recompute every figure naively and compare. The
  // naive pass is the pre-cache implementation (one full-ledger scan per
  // group query).
  struct LedgerEntry {
    std::string group;
    double epsilon;
    Composition comp;
  };
  constexpr int kCharges = 100'000;
  const std::vector<std::string> kGroups = {"setup", "window", "flush",
                                            "svt", "release"};
  PrivacyAccountant acc;
  std::vector<LedgerEntry> ledger;
  ledger.reserve(kCharges);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < kCharges; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::string& group = kGroups[(state >> 33) % kGroups.size()];
    double epsilon = static_cast<double>((state >> 11) % 1000) / 1000.0;
    Composition comp = ((state >> 7) & 1) ? Composition::kSequential
                                          : Composition::kParallel;
    acc.Charge(group, epsilon, comp);
    ledger.push_back({group, epsilon, comp});
  }
  ASSERT_EQ(acc.num_charges(), static_cast<size_t>(kCharges));

  auto naive_group = [&](const std::string& group) {
    double sequential = 0.0, parallel_max = 0.0;
    for (const auto& c : ledger) {
      if (c.group != group) continue;
      if (c.comp == Composition::kSequential) {
        sequential += c.epsilon;
      } else {
        parallel_max = std::max(parallel_max, c.epsilon);
      }
    }
    return sequential + parallel_max;
  };
  double naive_sequential = 0.0, naive_parallel = 0.0;
  for (const auto& g : kGroups) {
    double eps = naive_group(g);
    EXPECT_DOUBLE_EQ(acc.GroupEpsilon(g), eps) << g;
    naive_sequential += eps;
    naive_parallel = std::max(naive_parallel, eps);
  }
  EXPECT_DOUBLE_EQ(acc.TotalEpsilonSequential(), naive_sequential);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilonParallel(), naive_parallel);
}

// ---------------------------------------------------- Pattern simulators

UpdateStreamView MakeStream(int64_t horizon, int64_t every) {
  UpdateStreamView s;
  s.arrivals.resize(static_cast<size_t>(horizon), false);
  for (int64_t t = 0; t < horizon; t += every) {
    s.arrivals[static_cast<size_t>(t)] = true;
  }
  return s;
}

TEST(TimerPatternTest, UpdatesOnSchedule) {
  Rng rng(9);
  auto stream = MakeStream(300, 3);
  auto pattern = SimulateTimerPattern(stream, 1.0, /*T=*/30,
                                      /*flush_interval=*/0, 0, &rng);
  ASSERT_FALSE(pattern.empty());
  EXPECT_EQ(pattern[0].t, 0);  // setup
  for (size_t i = 1; i < pattern.size(); ++i) {
    EXPECT_EQ(pattern[i].t % 30, 0) << "update off schedule";
  }
  EXPECT_EQ(pattern.size(), 1u + 300 / 30);
}

TEST(TimerPatternTest, FlushPointsPresentAndConstant) {
  Rng rng(10);
  auto stream = MakeStream(200, 5);
  auto pattern =
      SimulateTimerPattern(stream, 1.0, /*T=*/60, /*flush=*/50, /*s=*/7, &rng);
  int flushes = 0;
  for (const auto& p : pattern) {
    if (p.t % 50 == 0 && p.t > 0 && p.t % 60 != 0) {
      EXPECT_DOUBLE_EQ(p.count, 7.0);
      ++flushes;
    }
  }
  EXPECT_EQ(flushes, 4);  // t = 50, 100, 150, 200
}

TEST(TimerPatternTest, NoisyCountsTrackWindowCounts) {
  Rng rng(11);
  auto stream = MakeStream(3000, 2);  // 15 arrivals per 30-window
  auto pattern = SimulateTimerPattern(stream, 5.0, 30, 0, 0, &rng);
  RunningStat s;
  for (size_t i = 1; i < pattern.size(); ++i) s.Add(pattern[i].count);
  EXPECT_NEAR(s.mean(), 15.0, 0.5);
}

TEST(AntPatternTest, FiresNearThreshold) {
  Rng rng(12);
  auto stream = MakeStream(5000, 2);  // one arrival every 2 ticks
  // High epsilon => little SVT noise => releases land near theta.
  auto pattern = SimulateAntPattern(stream, 20.0, /*theta=*/20, 0, 0, &rng);
  // Skip setup; released counts should be near theta.
  RunningStat s;
  for (size_t i = 1; i < pattern.size(); ++i) s.Add(pattern[i].count);
  EXPECT_GT(s.count(), 50);
  EXPECT_NEAR(s.mean(), 20.0, 6.0);
}

TEST(AntPatternTest, SparserDataFiresLessOften) {
  Rng rng(13);
  // High epsilon so firing is data-driven rather than noise-driven.
  auto dense = SimulateAntPattern(MakeStream(4000, 2), 10.0, 25, 0, 0, &rng);
  auto sparse = SimulateAntPattern(MakeStream(4000, 40), 10.0, 25, 0, 0, &rng);
  EXPECT_GT(dense.size(), sparse.size() * 3);
}

TEST(AntPatternTest, LowEpsilonFiresMoreOftenThanHighEpsilon) {
  // Observation 4 (paper §8.2): with small epsilon the large SVT noise
  // triggers uploads before enough data accumulates, so update frequency
  // *increases* as epsilon decreases.
  Rng rng(14);
  auto stream = MakeStream(4000, 8);
  auto noisy = SimulateAntPattern(stream, 0.1, 25, 0, 0, &rng);
  auto tight = SimulateAntPattern(stream, 10.0, 25, 0, 0, &rng);
  EXPECT_GT(noisy.size(), tight.size() * 2);
}

// Empirical DP distinguisher on the *full released pattern*: neighboring
// streams (one arrival added) must produce released update-count sums whose
// distributions have bounded likelihood ratio. We project the pattern to a
// low-dimensional statistic (total released volume, rounded) — any
// post-processing of an eps-DP output is itself eps-DP, so the bound must
// hold on the projection too.
class PatternDpTest : public ::testing::TestWithParam<double> {};

TEST_P(PatternDpTest, TimerPatternProjectionSatisfiesDp) {
  const double eps = GetParam();
  auto base = MakeStream(120, 4);
  auto neighbor = base;
  neighbor.arrivals[57] = !neighbor.arrivals[57];  // add/remove one update

  Rng rng(99);
  const int n = 60000;
  std::map<int64_t, int> hist_a, hist_b;
  for (int i = 0; i < n; ++i) {
    double total = 0;
    for (const auto& p : SimulateTimerPattern(base, eps, 30, 0, 0, &rng)) {
      total += p.count;
    }
    hist_a[static_cast<int64_t>(std::llround(total))]++;
  }
  for (int i = 0; i < n; ++i) {
    double total = 0;
    for (const auto& p : SimulateTimerPattern(neighbor, eps, 30, 0, 0, &rng)) {
      total += p.count;
    }
    hist_b[static_cast<int64_t>(std::llround(total))]++;
  }
  for (const auto& [bucket, count_a] : hist_a) {
    auto it = hist_b.find(bucket);
    if (it == hist_b.end()) continue;
    if (count_a < 800 || it->second < 800) continue;
    double ratio = static_cast<double>(count_a) / it->second;
    EXPECT_LE(ratio, std::exp(eps) * 1.25) << "bucket " << bucket;
    EXPECT_GE(ratio, std::exp(-eps) / 1.25) << "bucket " << bucket;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, PatternDpTest,
                         ::testing::Values(0.5, 1.0));

}  // namespace
}  // namespace dpsync::dp
