// Tests for the encrypted-database layer: leakage compatibility (Table 3 /
// P4), the encrypted table store, the ObliDB-style L-0 engine (including
// real oblivious joins and the ORAM-indexed mode), and the Crypt-eps-style
// L-DP engine.
#include <gtest/gtest.h>

#include "edb/crypte_engine.h"
#include "edb/encrypted_table.h"
#include "edb/leakage.h"
#include "edb/oblidb_engine.h"
#include "edb/plan_cache.h"
#include "edb/volume_hiding.h"
#include "query/executor.h"
#include "query/parser.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::edb {
namespace {

using workload::TripRecord;
using workload::TripSchema;
using testutil::Trip;

// --------------------------------------------------------------- Leakage

TEST(LeakageTest, L0AndLdpCompatible) {
  LeakageProfile p;
  p.query_class = LeakageClass::kL0;
  EXPECT_TRUE(CheckCompatibility(p).compatible);
  p.query_class = LeakageClass::kLDP;
  EXPECT_TRUE(CheckCompatibility(p).compatible);
}

TEST(LeakageTest, L1NeedsPadding) {
  LeakageProfile p;
  p.query_class = LeakageClass::kL1;
  auto r = CheckCompatibility(p);
  EXPECT_TRUE(r.compatible);
  EXPECT_TRUE(r.needs_volume_padding);
}

TEST(LeakageTest, L2Incompatible) {
  LeakageProfile p;
  p.query_class = LeakageClass::kL2;
  EXPECT_FALSE(CheckCompatibility(p).compatible);
}

TEST(LeakageTest, BatchingIncompatible) {
  LeakageProfile p;
  p.query_class = LeakageClass::kL0;
  p.encrypts_records_atomically = false;
  EXPECT_FALSE(CheckCompatibility(p).compatible);
}

TEST(LeakageTest, StaticSchemesIncompatible) {
  LeakageProfile p;
  p.query_class = LeakageClass::kL0;
  p.supports_insertion = false;
  EXPECT_FALSE(CheckCompatibility(p).compatible);
}

TEST(LeakageTest, ExtraUpdateLeakageIncompatible) {
  LeakageProfile p;
  p.query_class = LeakageClass::kL0;
  p.update_leaks_only_pattern = false;
  EXPECT_FALSE(CheckCompatibility(p).compatible);
}

TEST(LeakageTest, CatalogMatchesTable3Examples) {
  auto find = [](const std::string& name) {
    for (const auto& e : SchemeCatalog()) {
      if (e.name == name) return e.query_class;
    }
    return LeakageClass::kL2;
  };
  EXPECT_EQ(find("ObliDB"), LeakageClass::kL0);
  EXPECT_EQ(find("CryptEpsilon"), LeakageClass::kLDP);
  EXPECT_EQ(find("Shrinkwrap"), LeakageClass::kLDP);
  EXPECT_EQ(find("StealthDB"), LeakageClass::kL1);
  EXPECT_EQ(find("CryptDB"), LeakageClass::kL2);
}

TEST(LeakageTest, BothBuiltInEnginesPassP4) {
  ObliDbServer oblidb;
  CryptEpsServer crypte;
  EXPECT_TRUE(CheckCompatibility(oblidb.leakage()).compatible);
  EXPECT_TRUE(CheckCompatibility(crypte.leakage()).compatible);
}

// -------------------------------------------------------- Encrypted table

TEST(EncryptedTableTest, SetupThenUpdateRoundTrip) {
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1));
  ASSERT_TRUE(store.Setup({Trip(1, 10), Trip(2, 20)}).ok());
  ASSERT_TRUE(store.Update({Trip(3, 30)}).ok());
  EXPECT_EQ(store.outsourced_count(), 3);
  auto rows = store.DecryptAll();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ(TripRecord::FromRow((*rows)[2]).pickup_id, 30);
}

TEST(EncryptedTableTest, UpdateBeforeSetupFails) {
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1));
  EXPECT_FALSE(store.Update({Trip(1, 10)}).ok());
}

TEST(EncryptedTableTest, DoubleSetupFails) {
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1));
  ASSERT_TRUE(store.Setup({}).ok());
  EXPECT_FALSE(store.Setup({}).ok());
}

TEST(EncryptedTableTest, CiphertextsFixedSizeAndDistinct) {
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1));
  ASSERT_TRUE(store.Setup({Trip(1, 10), Trip(1, 10), Trip(2, 20, true)}).ok());
  auto cts_or = store.ciphertexts();
  ASSERT_TRUE(cts_or.ok());
  const auto& cts = cts_or.value();
  ASSERT_EQ(cts.size(), 3u);
  for (const auto& ct : cts) {
    EXPECT_EQ(ct.size(), crypto::RecordCipher::kCiphertextSize);
  }
  // Identical plaintexts and dummies are all pairwise distinct ciphertexts.
  EXPECT_NE(cts[0], cts[1]);
  EXPECT_NE(cts[0], cts[2]);
}

TEST(EncryptedTableTest, BytesAccounting) {
  EncryptedTableStore store("T", TripSchema(), Bytes(32, 1));
  ASSERT_TRUE(store.Setup({Trip(1, 10)}).ok());
  EXPECT_EQ(store.outsourced_bytes(),
            static_cast<int64_t>(crypto::RecordCipher::kCiphertextSize));
}

// ----------------------------------------------------------- Cost model

TEST(CostModelTest, ScanScalesLinearly) {
  auto m = ObliDbCostModel();
  double c1 = ScanCost(m, 1000, false);
  double c2 = ScanCost(m, 2000, false);
  EXPECT_GT(c2, c1);
  EXPECT_NEAR((c2 - m.query_fixed) / (c1 - m.query_fixed), 2.0, 1e-9);
}

TEST(CostModelTest, JoinScalesQuadratically) {
  auto m = ObliDbCostModel();
  double c1 = JoinCost(m, 1000, 1000);
  double c2 = JoinCost(m, 2000, 2000);
  EXPECT_NEAR((c2 - m.query_fixed) / (c1 - m.query_fixed), 4.0, 1e-9);
}

TEST(CostModelTest, CryptEpsSlowerThanObliDb) {
  // Matches Table 5: the HE pipeline is an order of magnitude slower.
  EXPECT_GT(ScanCost(CryptEpsCostModel(), 10000, true),
            ScanCost(ObliDbCostModel(), 10000, true) * 5);
}

// ---------------------------------------------------------------- ObliDB

class ObliDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ObliDbServer>();
    auto yellow = server_->CreateTable("YellowCab", TripSchema());
    ASSERT_TRUE(yellow.ok());
    yellow_ = yellow.value();
    auto green = server_->CreateTable("GreenTaxi", TripSchema());
    ASSERT_TRUE(green.ok());
    green_ = green.value();
  }

  std::unique_ptr<ObliDbServer> server_;
  EdbTable* yellow_ = nullptr;
  EdbTable* green_ = nullptr;
};

TEST_F(ObliDbTest, DuplicateTableRejected) {
  EXPECT_FALSE(server_->CreateTable("YellowCab", TripSchema()).ok());
}

TEST_F(ObliDbTest, SchemaWithoutDummyFlagRejected) {
  query::Schema bare({{"x", query::ValueType::kInt}});
  EXPECT_FALSE(server_->CreateTable("Bare", bare).ok());
}

TEST_F(ObliDbTest, NonIdentifierTableNamesRejected) {
  // Table names must be parser-shaped identifiers: anything else could
  // never be referenced from SQL, and a name embedding query syntax could
  // alias two distinct queries onto one plan-cache entry.
  for (const char* name : {"", "2fast", "T WHERE a = 'b'", "a.b", "x-y"}) {
    EXPECT_EQ(server_->CreateTable(name, TripSchema()).status().code(),
              StatusCode::kInvalidArgument)
        << "name: " << name;
  }
  EXPECT_TRUE(server_->CreateTable("Taxi_2024", TripSchema()).ok());
}

TEST_F(ObliDbTest, CountQueryExactOverRealRecords) {
  ASSERT_TRUE(yellow_->Setup({Trip(1, 60), Trip(2, 70), Trip(3, 200)}).ok());
  ASSERT_TRUE(yellow_->Update({Trip(4, 55), Trip(5, 10, /*dummy=*/true)}).ok());
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  auto r = server_->Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 3.0);  // dummy in range is excluded
  EXPECT_EQ(r->stats.records_scanned, 5);
  EXPECT_GT(r->stats.virtual_seconds, 0.0);
}

TEST_F(ObliDbTest, GroupByIgnoresDummies) {
  ASSERT_TRUE(yellow_
                  ->Setup({Trip(1, 10), Trip(2, 10), Trip(3, 20),
                           Trip(4, 10, true), Trip(5, 30, true)})
                  .ok());
  auto q = query::ParseSelect(
      "SELECT pickupID, COUNT(*) FROM YellowCab GROUP BY pickupID");
  auto r = server_->Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->result.grouped);
  EXPECT_DOUBLE_EQ(r->result.groups.at(query::Value(int64_t{10})), 2.0);
  EXPECT_EQ(r->result.groups.count(query::Value(int64_t{30})), 0u);
}

TEST_F(ObliDbTest, ObliviousJoinMatchesTruthAndExcludesDummies) {
  ASSERT_TRUE(yellow_->Setup({Trip(1, 10), Trip(2, 20), Trip(3, 30)}).ok());
  // Green shares pickTime 2 and 3; dummy collides at pickTime 1 but must
  // not join. (Dummies carry pick_time=0 in production; force collision to
  // prove the rewrite, not the data, does the work.)
  workload::TripRecord dummy;
  dummy.pick_time = 1;
  dummy.is_dummy = true;
  ASSERT_TRUE(green_->Setup({Trip(2, 99), Trip(3, 98), dummy.ToRecord()}).ok());
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime");
  auto r = server_->Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 2.0);
  EXPECT_EQ(r->stats.join_pairs, 9);
}

TEST_F(ObliDbTest, LargeJoinShortcutMatchesRealNestedLoop) {
  // Same data queried under both join paths must agree.
  std::vector<Record> ys, gs;
  for (int64_t t = 0; t < 60; ++t) ys.push_back(Trip(t, 10));
  for (int64_t t = 30; t < 90; ++t) gs.push_back(Trip(t, 20));
  ASSERT_TRUE(yellow_->Setup(ys).ok());
  ASSERT_TRUE(green_->Setup(gs).ok());
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime");

  auto real = server_->Query(q.value());
  ASSERT_TRUE(real.ok());

  ObliDbConfig tiny_limit;
  tiny_limit.oblivious_join_limit = 1;  // force the hash-join shortcut
  ObliDbServer shortcut_server(tiny_limit);
  auto y2 = shortcut_server.CreateTable("YellowCab", TripSchema());
  auto g2 = shortcut_server.CreateTable("GreenTaxi", TripSchema());
  ASSERT_TRUE(y2.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_TRUE(y2.value()->Setup(ys).ok());
  ASSERT_TRUE(g2.value()->Setup(gs).ok());
  auto fast = shortcut_server.Query(q.value());
  ASSERT_TRUE(fast.ok());

  EXPECT_DOUBLE_EQ(real->result.scalar, 30.0);
  EXPECT_DOUBLE_EQ(fast->result.scalar, real->result.scalar);
  // The virtual cost is charged identically on both paths.
  EXPECT_DOUBLE_EQ(fast->stats.virtual_seconds, real->stats.virtual_seconds);
}

TEST_F(ObliDbTest, UnknownTableQueryFails) {
  auto q = query::ParseSelect("SELECT COUNT(*) FROM Nope");
  EXPECT_FALSE(server_->Query(q.value()).ok());
}

TEST_F(ObliDbTest, VirtualCostGrowsWithData) {
  ASSERT_TRUE(yellow_->Setup({Trip(1, 10)}).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  auto before = server_->Query(q.value());
  std::vector<Record> batch;
  for (int64_t i = 0; i < 500; ++i) batch.push_back(Trip(10 + i, 20));
  ASSERT_TRUE(yellow_->Update(batch).ok());
  auto after = server_->Query(q.value());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->stats.virtual_seconds, before->stats.virtual_seconds);
}

TEST(ObliDbOramTest, IndexedModeMatchesLinearMode) {
  ObliDbConfig cfg;
  cfg.use_oram_index = true;
  cfg.oram_capacity = 512;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < 200; ++i) records.push_back(Trip(i, i % 50));
  ASSERT_TRUE(t.value()->Setup(records).ok());
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 10 AND 19");
  auto r = server.Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 40.0);
  // The ORAM really was exercised: one path access per record per scan
  // (plus one mirror write per record).
  auto* table = dynamic_cast<ObliDbTable*>(t.value());
  ASSERT_NE(table, nullptr);
  ASSERT_NE(table->mirror(), nullptr);
  EXPECT_GE(table->mirror()->StashStats().access_count, 400);
}

// -------------------------------------------------------- Sharded engines

std::vector<Record> ShardTestRecords() {
  std::vector<Record> records;
  for (int64_t i = 0; i < 300; ++i) records.push_back(Trip(i, i % 40));
  records.push_back(Trip(300, 10, /*dummy=*/true));
  return records;
}

TEST(ShardedEngineTest, ObliDbAnswersIdenticalOnFourShards) {
  ObliDbServer flat;
  ObliDbConfig sharded_cfg;
  sharded_cfg.storage.num_shards = 4;
  ObliDbServer sharded(sharded_cfg);
  for (ObliDbServer* server : {&flat, &sharded}) {
    auto t = server->CreateTable("YellowCab", TripSchema());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t.value()->Setup(ShardTestRecords()).ok());
  }
  for (const char* sql :
       {"SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 5 AND 25",
        "SELECT pickupID, COUNT(*) FROM YellowCab GROUP BY pickupID",
        "SELECT SUM(fare) FROM YellowCab",
        "SELECT AVG(tripDistance) FROM YellowCab"}) {
    auto q = query::ParseSelect(sql);
    ASSERT_TRUE(q.ok()) << sql;
    auto a = flat.Query(q.value());
    auto b = sharded.Query(q.value());
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    EXPECT_EQ(a->result.scalar, b->result.scalar) << sql;
    EXPECT_EQ(a->result.groups, b->result.groups) << sql;
    // Per-shard scan work aggregates to the flat count: QET unchanged.
    EXPECT_EQ(a->stats.records_scanned, b->stats.records_scanned) << sql;
    EXPECT_DOUBLE_EQ(a->stats.virtual_seconds, b->stats.virtual_seconds)
        << sql;
  }
}

TEST(ShardedEngineTest, ObliDbJoinIdenticalOnFourShards) {
  ObliDbConfig cfg;
  cfg.storage.num_shards = 4;
  ObliDbServer sharded(cfg);
  ObliDbServer flat;
  for (ObliDbServer* server : {&flat, &sharded}) {
    auto y = server->CreateTable("YellowCab", TripSchema());
    auto g = server->CreateTable("GreenTaxi", TripSchema());
    ASSERT_TRUE(y.ok());
    ASSERT_TRUE(g.ok());
    std::vector<Record> ys, gs;
    for (int64_t t = 0; t < 50; ++t) ys.push_back(Trip(t, 10));
    for (int64_t t = 25; t < 75; ++t) gs.push_back(Trip(t, 20));
    ASSERT_TRUE(y.value()->Setup(ys).ok());
    ASSERT_TRUE(g.value()->Setup(gs).ok());
  }
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime");
  auto a = flat.Query(q.value());
  auto b = sharded.Query(q.value());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->result.scalar, 25.0);
  EXPECT_DOUBLE_EQ(b->result.scalar, a->result.scalar);
  EXPECT_EQ(b->stats.join_pairs, a->stats.join_pairs);
}

TEST(ShardedEngineTest, CryptEpsNoiseStreamUnchangedBySharding) {
  // The DP release must depend only on the seed and the query stream —
  // never on physical record placement.
  CryptEpsConfig flat_cfg;
  CryptEpsConfig sharded_cfg;
  sharded_cfg.storage.num_shards = 4;
  CryptEpsServer flat(flat_cfg);
  CryptEpsServer sharded(sharded_cfg);
  for (CryptEpsServer* server : {&flat, &sharded}) {
    auto t = server->CreateTable("YellowCab", TripSchema());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t.value()->Setup(ShardTestRecords()).ok());
  }
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  for (int i = 0; i < 5; ++i) {
    auto a = flat.Query(q.value());
    auto b = sharded.Query(q.value());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->result.scalar, b->result.scalar) << "query " << i;
  }
}

TEST(ShardedEngineTest, OramIndexedModeWorksOverShards) {
  ObliDbConfig cfg;
  cfg.use_oram_index = true;
  cfg.oram_capacity = 512;
  cfg.storage.num_shards = 4;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < 200; ++i) records.push_back(Trip(i, i % 50));
  ASSERT_TRUE(t.value()->Setup(records).ok());
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 10 AND 19");
  auto r = server.Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 40.0);

  auto* table = dynamic_cast<ObliDbTable*>(t.value());
  ASSERT_NE(table, nullptr);
  const auto* mirror = table->mirror();
  ASSERT_NE(mirror, nullptr);
  EXPECT_EQ(mirror->num_shards(), 4);
  // The mirror is one Path ORAM per storage shard, routed by the same
  // FNV-1a record identity: every record's ORAM tree must be the shard its
  // ciphertext was stored on.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(mirror->ShardOf(records[i].payload),
              table->store().ShardLocation(static_cast<int64_t>(i)).first)
        << "record " << i;
  }
  // The scan paid one oblivious path per record, charged at the per-shard
  // tree height: 512 blocks over 4 shards -> 128-capacity trees -> 8
  // buckets per path.
  EXPECT_EQ(table->last_scan_work().paths, 200);
  EXPECT_EQ(table->last_scan_work().buckets, 200 * 8);
  EXPECT_EQ(r->stats.oram_paths, 200);
  EXPECT_EQ(r->stats.oram_buckets, 1600);
  EXPECT_GT(r->stats.oram_virtual_seconds, 0.0);
}

TEST(ShardedEngineTest, MirrorCapacityFailureIsStickyAndLoud) {
  ObliDbConfig cfg;
  cfg.use_oram_index = true;
  cfg.oram_capacity = 16;  // far below the record count
  cfg.storage.num_shards = 4;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < 100; ++i) records.push_back(Trip(i, i % 50));
  auto setup = t.value()->Setup(records);
  ASSERT_EQ(setup.code(), StatusCode::kOutOfRange);
  // The index diverged from the store; later operations must surface the
  // original capacity cause, not a secondary out-of-sync symptom.
  auto update = t.value()->Update({Trip(200, 3)});
  EXPECT_EQ(update.code(), StatusCode::kOutOfRange);
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  auto r = server.Query(q.value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ShardedEngineTest, EngineExposesPerShardTranscripts) {
  ObliDbConfig cfg;
  cfg.use_oram_index = true;
  cfg.oram_capacity = 512;
  cfg.record_oram_trace = true;
  cfg.storage.num_shards = 4;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < 200; ++i) records.push_back(Trip(i, i % 50));
  ASSERT_TRUE(t.value()->Setup(records).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(server.Query(q.value()).ok());

  auto* table = dynamic_cast<ObliDbTable*>(t.value());
  ASSERT_NE(table, nullptr);
  auto transcripts = AggregateOramTranscripts(*table->mirror());
  ASSERT_EQ(transcripts.size(), 4u);
  int64_t total = 0;
  for (const auto& tr : transcripts) {
    EXPECT_GT(tr.accesses, 0) << "shard " << tr.shard;
    total += tr.accesses;
  }
  // One mirror write + one scan touch per record, split across shards.
  EXPECT_EQ(total, 400);

  auto health = server.oram_health();
  EXPECT_TRUE(health.enabled);
  EXPECT_EQ(health.access_count, 400);
  ASSERT_EQ(health.shard_access_counts.size(), 4u);
}

TEST(ShardedEngineTest, IndexedAnswersInvariantInShardCount) {
  // Same data, same queries, shard counts {1, 4}: indexed-mode answers and
  // headline costs must be identical; only the ORAM bucket accounting may
  // (and must) reflect the shorter per-shard trees.
  auto run = [](int shards) {
    ObliDbConfig cfg;
    cfg.use_oram_index = true;
    cfg.oram_capacity = 512;
    cfg.storage.num_shards = shards;
    auto server = std::make_unique<ObliDbServer>(cfg);
    auto t = server->CreateTable("YellowCab", TripSchema());
    EXPECT_TRUE(t.ok());
    std::vector<Record> records;
    for (int64_t i = 0; i < 200; ++i) records.push_back(Trip(i, i % 50));
    EXPECT_TRUE(t.value()->Setup(records).ok());
    auto q = query::ParseSelect(
        "SELECT pickupID, COUNT(*) AS C FROM YellowCab GROUP BY pickupID");
    auto r = server->Query(q.value());
    EXPECT_TRUE(r.ok());
    return std::move(r.value());
  };
  auto flat = run(1);
  auto sharded = run(4);
  EXPECT_EQ(flat.result.L1DistanceTo(sharded.result), 0.0);
  EXPECT_EQ(flat.stats.records_scanned, sharded.stats.records_scanned);
  EXPECT_EQ(flat.stats.virtual_seconds, sharded.stats.virtual_seconds);
  EXPECT_EQ(flat.stats.oram_paths, sharded.stats.oram_paths);
  // 512-capacity tree: 10 buckets/path; four 128-capacity trees: 8.
  EXPECT_EQ(flat.stats.oram_buckets, 200 * 10);
  EXPECT_EQ(sharded.stats.oram_buckets, 200 * 8);
  EXPECT_LT(sharded.stats.oram_virtual_seconds,
            flat.stats.oram_virtual_seconds);
}

// -------------------------------------------------------------- Crypt-eps

class CryptEpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CryptEpsConfig cfg;
    cfg.query_epsilon = 3.0;
    server_ = std::make_unique<CryptEpsServer>(cfg);
    auto t = server_->CreateTable("YellowCab", TripSchema());
    ASSERT_TRUE(t.ok());
    table_ = t.value();
  }

  std::unique_ptr<CryptEpsServer> server_;
  EdbTable* table_ = nullptr;
};

TEST_F(CryptEpsTest, NoisyCountNearTruth) {
  std::vector<Record> records;
  for (int64_t i = 0; i < 1000; ++i) records.push_back(Trip(i, 60));
  ASSERT_TRUE(table_->Setup(records).ok());
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  auto r = server_->Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->result.scalar, 1000.0, 10.0);  // Lap(1/3) noise is tiny
}

TEST_F(CryptEpsTest, AnswersAreActuallyNoisy) {
  ASSERT_TRUE(table_->Setup({Trip(1, 60)}).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  bool saw_nonint = false;
  for (int i = 0; i < 50 && !saw_nonint; ++i) {
    auto r = server_->Query(q.value());
    ASSERT_TRUE(r.ok());
    saw_nonint = (r->result.scalar != 1.0);
  }
  EXPECT_TRUE(saw_nonint);
}

TEST_F(CryptEpsTest, DummiesExcludedBeforeNoise) {
  std::vector<Record> records;
  for (int64_t i = 0; i < 500; ++i) records.push_back(Trip(i, 60));
  for (int64_t i = 0; i < 500; ++i) {
    records.push_back(Trip(i, 60, /*dummy=*/true));
  }
  ASSERT_TRUE(table_->Setup(records).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  auto r = server_->Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->result.scalar, 500.0, 10.0);
}

TEST_F(CryptEpsTest, GroupedAnswersNonNegative) {
  ASSERT_TRUE(table_->Setup({Trip(1, 10), Trip(2, 20)}).ok());
  auto q = query::ParseSelect(
      "SELECT pickupID, COUNT(*) FROM YellowCab GROUP BY pickupID");
  for (int i = 0; i < 20; ++i) {
    auto r = server_->Query(q.value());
    ASSERT_TRUE(r.ok());
    for (const auto& [k, v] : r->result.groups) EXPECT_GE(v, 0.0);
  }
}

TEST_F(CryptEpsTest, JoinUnsupported) {
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime");
  EXPECT_EQ(server_->Query(q.value()).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(CryptEpsTest, BudgetAccumulates) {
  ASSERT_TRUE(table_->Setup({Trip(1, 10)}).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  EXPECT_DOUBLE_EQ(server_->consumed_query_budget(), 0.0);
  ASSERT_TRUE(server_->Query(q.value()).ok());
  ASSERT_TRUE(server_->Query(q.value()).ok());
  EXPECT_DOUBLE_EQ(server_->consumed_query_budget(), 6.0);
}

TEST_F(CryptEpsTest, VirtualCostHigherThanObliDb) {
  std::vector<Record> records;
  for (int64_t i = 0; i < 300; ++i) records.push_back(Trip(i, 60));
  ASSERT_TRUE(table_->Setup(records).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  auto crypt_cost = server_->Query(q.value())->stats.virtual_seconds;

  ObliDbServer oblidb;
  auto t2 = oblidb.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(t2.value()->Setup(records).ok());
  auto oblidb_cost = oblidb.Query(q.value())->stats.virtual_seconds;
  EXPECT_GT(crypt_cost, oblidb_cost);
}

// ------------------------------------------------ Query API v2 (sessions)

class QuerySessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ObliDbServer>();
    auto t = server_->CreateTable("YellowCab", TripSchema());
    ASSERT_TRUE(t.ok());
    yellow_ = t.value();
    ASSERT_OK(yellow_->Setup({Trip(1, 60), Trip(2, 70), Trip(3, 200),
                              Trip(4, 55), Trip(5, 10, /*dummy=*/true)}));
  }

  std::unique_ptr<ObliDbServer> server_;
  EdbTable* yellow_ = nullptr;
};

TEST_F(QuerySessionTest, PreparedPathMatchesOneShotBitExactly) {
  const std::string sql =
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100";
  auto parsed = query::ParseSelect(sql);
  ASSERT_TRUE(parsed.ok());
  auto one_shot = server_->Query(parsed.value());
  ASSERT_TRUE(one_shot.ok());

  auto session = server_->CreateSession();
  auto prepared = session->Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  auto via_session = session->Execute(prepared.value());
  ASSERT_TRUE(via_session.ok());

  EXPECT_DOUBLE_EQ(via_session->result.scalar, one_shot->result.scalar);
  EXPECT_EQ(via_session->stats.records_scanned,
            one_shot->stats.records_scanned);
  EXPECT_DOUBLE_EQ(via_session->stats.virtual_seconds,
                   one_shot->stats.virtual_seconds);
  EXPECT_EQ(via_session->stats.revealed_volume,
            one_shot->stats.revealed_volume);
}

TEST_F(QuerySessionTest, PrepareValidatesUpFront) {
  auto session = server_->CreateSession();
  EXPECT_EQ(session->Prepare("SELECT COUNT(*) FROM Nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session->Prepare("SELECT pickupID FROM YellowCab")
                .status()
                .code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(session
                ->Prepare("SELECT typo, COUNT(*) FROM YellowCab "
                          "GROUP BY typo")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(session->Prepare("SELECT COUNT( FROM YellowCab").ok());
}

TEST_F(QuerySessionTest, PlanCacheCountsHitsAcrossSpellingsAndSessions) {
  auto s1 = server_->CreateSession();
  auto s2 = server_->CreateSession();
  auto q1 = s1->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(q1->from_plan_cache());
  // Different spelling, same canonical text, different session: a hit on
  // the shared server cache.
  auto q2 = s2->Prepare("select   count(*)   from YellowCab");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->from_plan_cache());
  EXPECT_EQ(q1->fingerprint(), q2->fingerprint());

  auto stats = server_->stats();
  EXPECT_EQ(stats.prepares, 2);
  EXPECT_EQ(stats.plan_cache_hits, 1);
  EXPECT_EQ(stats.plan_cache_misses, 1);
}

namespace {

/// Synthetic cached plan: the cache only inspects fingerprint,
/// canonical_text and catalog_epoch.
std::shared_ptr<const query::QueryPlan> FakePlan(uint64_t fingerprint,
                                                 uint64_t epoch = 0) {
  auto plan = std::make_shared<query::QueryPlan>();
  plan->fingerprint = fingerprint;
  plan->catalog_epoch = epoch;
  plan->canonical_text = "Q" + std::to_string(fingerprint);
  return plan;
}

}  // namespace

TEST(PlanCacheTest, LruEvictionHammeredPastTheCap) {
  // Hammer insertion far past the cap: the cache must stay bounded, keep
  // exactly the most-recently-used tail of the stream, and evict in true
  // LRU order — each eviction in O(1) off the intrusive recency list (a
  // linear victim scan here would be quadratic across the hammer loop).
  constexpr size_t kCap = 64;
  constexpr uint64_t kInserted = 10 * kCap;
  PlanCache cache(kCap);
  for (uint64_t f = 1; f <= kInserted; ++f) {
    cache.Insert(FakePlan(f));
    ASSERT_LE(cache.size(), kCap);
  }
  EXPECT_EQ(cache.size(), kCap);
  // Survivors are exactly the last kCap distinct fingerprints.
  for (uint64_t f = kInserted - kCap + 1; f <= kInserted; ++f) {
    EXPECT_TRUE(cache.Contains(f)) << f;
  }
  EXPECT_FALSE(cache.Contains(kInserted - kCap));

  // A catalog-epoch bump sweeps the whole surviving tail in one call
  // (EdbServer::CreateTable does this on every catalog change) instead of
  // leaving dead-epoch plans pinned until their fingerprints recur.
  cache.EvictStaleEpoch(/*catalog_epoch=*/1);
  EXPECT_EQ(cache.size(), 0u);
  // The recency list was swept along with the map: the cache keeps
  // working at full capacity afterwards.
  for (uint64_t f = 1; f <= 2 * kCap; ++f) {
    cache.Insert(FakePlan(f, /*epoch=*/1));
    ASSERT_LE(cache.size(), kCap);
  }
  EXPECT_EQ(cache.size(), kCap);
}

TEST(PlanCacheTest, EvictStaleEpochSweepsOnlyStaleEntries) {
  PlanCache cache(8);
  cache.Insert(FakePlan(1, /*epoch=*/0));
  cache.Insert(FakePlan(2, /*epoch=*/1));
  cache.Insert(FakePlan(3, /*epoch=*/0));
  cache.EvictStaleEpoch(/*catalog_epoch=*/1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(3));
  // The sweep counts no hits or misses — it is bookkeeping, not lookups.
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  // The survivor is still served.
  EXPECT_NE(cache.Lookup(2, "Q2", 1), nullptr);
}

TEST(PlanCacheTest, LookupRefreshesRecency) {
  PlanCache cache(3);
  for (uint64_t f : {1u, 2u, 3u}) cache.Insert(FakePlan(f));
  // Touch 1: it becomes most-recent, so inserting 4 must evict 2.
  EXPECT_NE(cache.Lookup(1, "Q1", 0), nullptr);
  cache.Insert(FakePlan(4));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  // Re-inserting an existing fingerprint refreshes, never grows.
  cache.Insert(FakePlan(3));
  EXPECT_EQ(cache.size(), 3u);
  cache.Insert(FakePlan(5));
  EXPECT_FALSE(cache.Contains(1));  // 1 was now the LRU
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.hits(), 1);
}

TEST(PlanCacheTest, StaleEpochEvictsOnLookupAndKeepsListConsistent) {
  PlanCache cache(2);
  cache.Insert(FakePlan(1, /*epoch=*/0));
  cache.Insert(FakePlan(2, /*epoch=*/0));
  // Lookup at a newer catalog epoch: the stale entry is dropped from both
  // the map and the recency list (a dangling list node would corrupt the
  // next eviction).
  EXPECT_EQ(cache.Lookup(1, "Q1", /*catalog_epoch=*/1), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  cache.Insert(FakePlan(3, 1));
  cache.Insert(FakePlan(4, 1));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Contains(2));  // evicted as LRU, not crashed over
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST_F(QuerySessionTest, OneShotShimHitsCacheFromSecondCallOn) {
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto first = server_->Query(q.value());
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->stats.plan_cache_hit);
  auto second = server_->Query(q.value());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->stats.plan_cache_hit);
  EXPECT_DOUBLE_EQ(second->result.scalar, first->result.scalar);
}

TEST_F(QuerySessionTest, StalePlansRebindAfterSchemaChange) {
  auto session = server_->CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(session->Execute(q.value()).ok());
  const uint64_t epoch_before = server_->catalog_epoch();

  // A catalog change invalidates the binding; execution transparently
  // re-plans and still answers.
  ASSERT_TRUE(server_->CreateTable("GreenTaxi", TripSchema()).ok());
  EXPECT_GT(server_->catalog_epoch(), epoch_before);
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->result.scalar, 4.0);
  EXPECT_EQ(server_->stats().plan_rebinds, 1);

  // The re-bound plan is cached: the next stale handle execution hits it
  // without another full plan.
  ASSERT_TRUE(session->Execute(q.value()).ok());
  EXPECT_EQ(server_->stats().plan_rebinds, 2);
  EXPECT_GE(server_->stats().plan_cache_hits, 1);
}

TEST_F(QuerySessionTest, AppendsDoNotInvalidatePlans) {
  auto session = server_->CreateSession();
  auto q = session->Prepare(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  ASSERT_TRUE(q.ok());
  auto before = session->Execute(q.value());
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->result.scalar, 3.0);
  // Sync epoch advances (owner appends); the same plan keeps serving.
  ASSERT_OK(yellow_->Update({Trip(6, 80), Trip(7, 90)}));
  auto after = session->Execute(q.value());
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->result.scalar, 5.0);
  EXPECT_EQ(server_->stats().plan_rebinds, 0);
}

TEST_F(QuerySessionTest, CryptEpsNoiseStreamIdenticalAcrossApis) {
  // Same seed, same query sequence: the session path must consume the
  // noise RNG exactly like the legacy one-shot path.
  auto make = [] {
    CryptEpsConfig cfg;
    cfg.master_seed = 77;
    auto server = std::make_unique<CryptEpsServer>(cfg);
    auto t = server->CreateTable("YellowCab", TripSchema());
    EXPECT_TRUE(t.ok());
    EXPECT_TRUE(
        t.value()->Setup({Trip(1, 60), Trip(2, 70), Trip(3, 80)}).ok());
    return server;
  };
  auto legacy = make();
  auto v2 = make();
  auto parsed = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(parsed.ok());
  auto session = v2->CreateSession();
  auto prepared = session->Prepare(parsed.value());
  ASSERT_TRUE(prepared.ok());
  for (int i = 0; i < 5; ++i) {
    auto a = legacy->Query(parsed.value());
    auto b = session->Execute(prepared.value());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(b->result.scalar, a->result.scalar) << i;
  }
}

TEST_F(QuerySessionTest, AdmissionDeadlineSurfacesAsDeadlineExceeded) {
  // Saturate a single-slot server with an async burst, then ask for an
  // impossible admission deadline.
  ObliDbConfig cfg;
  cfg.admission.max_in_flight = 1;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < 5000; ++i) records.push_back(Trip(i, i % 50));
  ASSERT_OK(t.value()->Setup(records));
  auto session = server.CreateSession();
  auto q = session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  // Keep the slot busy long enough via a burst of async queries...
  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = session->Submit(q.value());
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.value());
  }
  // ...and race it with tight-deadline queries until one gets queued
  // behind the burst. (If the burst drains first, every call just
  // succeeds — the loop tolerates that, but with 8 scans of 5000 records
  // ahead, a sub-microsecond deadline reliably trips at least once.)
  bool saw_deadline = false;
  for (int i = 0; i < 8 && !saw_deadline; ++i) {
    QueryOptions opts;
    opts.admission_timeout_seconds = 1e-7;
    auto r = session->Execute(q.value(), opts);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
      saw_deadline = true;
    }
  }
  for (const auto& ticket : tickets) ASSERT_TRUE(session->Wait(ticket).ok());
  EXPECT_EQ(saw_deadline, server.stats().deadlines_exceeded > 0);
}

TEST(VolumeDecoratorSessionTest, SessionsWorkThroughStealthDbAndPadding) {
  StealthDbServer inner;
  auto t = inner.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < 5; ++i) records.push_back(Trip(i, 60));
  ASSERT_OK(t.value()->Setup(records));

  auto inner_session = inner.CreateSession();
  auto q = inner_session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(q.ok());
  auto r = inner_session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.revealed_volume, 5);

  VolumePaddedServer padded(&inner);
  auto padded_session = padded.CreateSession();
  auto pq = padded_session->Prepare("SELECT COUNT(*) FROM YellowCab");
  ASSERT_TRUE(pq.ok());
  auto pr = padded_session->Execute(pq.value());
  ASSERT_TRUE(pr.ok());
  EXPECT_EQ(pr->stats.revealed_volume, 8);  // 5 -> next pow2
  EXPECT_DOUBLE_EQ(pr->result.scalar, 5.0);
}

}  // namespace
}  // namespace dpsync::edb
