// Integration tests: full DP-Sync experiments (scaled-down traces) across
// strategies and engines, checking every qualitative claim of §8, plus the
// update-pattern adversary.
//
// DPSYNC_SMOKE_SIM=1 selects a further-reduced smoke mode (half a
// simulated day, ~650 records) so sanitizer/CI sweeps finish ~8x faster;
// assertions that scale with the trace are expressed in terms of the
// config so both modes verify the same qualitative claims. The default
// (local) run keeps the full five-day sweep.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/adversary.h"
#include "sim/experiment.h"

namespace dpsync::sim {
namespace {

bool SmokeMode() {
  const char* v = std::getenv("DPSYNC_SMOKE_SIM");
  return v != nullptr && v[0] == '1';
}

/// Scaled-down config: ~5 simulated days, ~2.3k yellow records (smoke
/// mode: half a day, ~650 records across both tables).
ExperimentConfig SmallConfig(StrategyKind strategy, EngineKind engine) {
  ExperimentConfig cfg;
  cfg.engine = engine;
  cfg.strategy = strategy;
  cfg.yellow.horizon_minutes = 7200;
  cfg.yellow.target_records = 3000;
  cfg.green.horizon_minutes = 7200;
  cfg.green.target_records = 3500;
  cfg.params.flush_interval = 1000;
  cfg.size_sample_interval = 360;
  if (SmokeMode()) {
    // Half a simulated day with the same record/horizon density as the
    // full sweep (the SET-vs-DP volume ratios the tests assert depend on
    // it), and proportionally tightened query/flush/sampling schedules so
    // every series still collects enough points.
    cfg.yellow.horizon_minutes = 720;
    cfg.yellow.target_records = 300;
    cfg.green.horizon_minutes = 720;
    cfg.green.target_records = 350;
    cfg.params.flush_interval = 180;
    cfg.size_sample_interval = 90;
    for (auto& q : cfg.queries) q.interval = (q.name == "Q3") ? 360 : 90;
  }
  return cfg;
}

TEST(ExperimentTest, SurExactOnObliDb) {
  auto r = RunExperiment(SmallConfig(StrategyKind::kSur, EngineKind::kObliDb));
  ASSERT_TRUE(r.ok());
  // ObliDB answers are exact and SUR has no gap: all errors are zero.
  for (const auto& q : r->queries) {
    EXPECT_DOUBLE_EQ(q.mean_l1, 0.0) << q.name;
    EXPECT_DOUBLE_EQ(q.max_l1, 0.0) << q.name;
  }
  EXPECT_DOUBLE_EQ(r->mean_logical_gap, 0.0);
  EXPECT_EQ(r->dummy_synced, 0);
}

TEST(ExperimentTest, OtoErrorGrowsUnbounded) {
  auto r = RunExperiment(SmallConfig(StrategyKind::kOto, EngineKind::kObliDb));
  ASSERT_TRUE(r.ok());
  const auto& q1 = r->queries[0].l1_error;
  ASSERT_GE(q1.value.size(), 3u);
  // Error at the end is much larger than early on, and the mean is huge.
  EXPECT_GT(q1.value.back(), q1.value.front());
  EXPECT_GT(r->queries[1].mean_l1, 100.0);
}

TEST(ExperimentTest, SetExactButHeavy) {
  auto cfg = SmallConfig(StrategyKind::kSet, EngineKind::kObliDb);
  auto r = RunExperiment(cfg);
  ASSERT_TRUE(r.ok());
  for (const auto& q : r->queries) EXPECT_DOUBLE_EQ(q.mean_l1, 0.0) << q.name;
  // SET outsources one record per tick per table (~2 * horizon posts, of
  // which the real stream covers less than half): more than a full horizon
  // of pure padding at either trace scale.
  EXPECT_GT(r->dummy_synced, cfg.yellow.horizon_minutes);
}

TEST(ExperimentTest, DpStrategiesBoundedError) {
  for (auto kind : {StrategyKind::kDpTimer, StrategyKind::kDpAnt}) {
    auto r = RunExperiment(SmallConfig(kind, EngineKind::kObliDb));
    ASSERT_TRUE(r.ok());
    // Bounded error: max well below OTO-scale; no error accumulation.
    EXPECT_LT(r->queries[0].max_l1, 120.0) << r->strategy_name;
    EXPECT_LT(r->queries[1].max_l1, 200.0) << r->strategy_name;
    // Performance within a modest overhead of the data actually received.
    // (DP-ANT at eps=0.5 fires spuriously on SVT noise — §8.2 Obs. 4 — so
    // its dummy volume is larger than DP-Timer's but still SET-dominated:
    // SET would post ~2*horizon = 14400 dummies here.)
    EXPECT_LT(r->dummy_synced, 2 * r->real_synced) << r->strategy_name;
  }
}

TEST(ExperimentTest, DpErrorsMuchSmallerThanOto) {
  auto oto = RunExperiment(SmallConfig(StrategyKind::kOto, EngineKind::kObliDb));
  auto timer =
      RunExperiment(SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb));
  ASSERT_TRUE(oto.ok());
  ASSERT_TRUE(timer.ok());
  EXPECT_GT(oto->queries[1].mean_l1, timer->queries[1].mean_l1 * 20);
}

TEST(ExperimentTest, SetOutsourcesFarMoreThanDp) {
  auto set = RunExperiment(SmallConfig(StrategyKind::kSet, EngineKind::kObliDb));
  auto timer =
      RunExperiment(SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb));
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(timer.ok());
  EXPECT_GT(set->final_total_mb, timer->final_total_mb * 1.5);
  // ... and pays for it in QET (virtual, cost-model-driven).
  EXPECT_GT(set->queries[1].mean_qet, timer->queries[1].mean_qet * 1.5);
}

TEST(ExperimentTest, DpCloseToSurInData) {
  auto sur = RunExperiment(SmallConfig(StrategyKind::kSur, EngineKind::kObliDb));
  auto timer =
      RunExperiment(SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb));
  ASSERT_TRUE(sur.ok());
  ASSERT_TRUE(timer.ok());
  // Paper: DP total data within a few percent of SUR (here: within 25% on
  // the small trace, where flush dummies weigh relatively more).
  EXPECT_LT(timer->final_total_mb, sur->final_total_mb * 1.25);
}

TEST(ExperimentTest, CryptEpsNoisyButBounded) {
  auto r =
      RunExperiment(SmallConfig(StrategyKind::kSur, EngineKind::kCryptEps));
  ASSERT_TRUE(r.ok());
  // Q1 noise is Lap(1/3): tiny but nonzero.
  EXPECT_GT(r->queries[0].mean_l1, 0.0);
  EXPECT_LT(r->queries[0].mean_l1, 5.0);
}

TEST(ExperimentTest, CryptEpsSkipsJoinQueries) {
  auto cfg = SmallConfig(StrategyKind::kSur, EngineKind::kCryptEps);
  auto r = RunExperiment(cfg);
  ASSERT_TRUE(r.ok());
  // Q3 was filtered out: only Q1/Q2 collected.
  EXPECT_EQ(r->queries.size(), 2u);
}

TEST(ExperimentTest, JoinErrorsTrackGapOnObliDb) {
  auto r =
      RunExperiment(SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->queries.size(), 3u);
  EXPECT_EQ(r->queries[2].name, "Q3");
  EXPECT_GT(r->queries[2].l1_error.value.size(), 0u);
  EXPECT_LT(r->queries[2].max_l1, 300.0);
}

TEST(ExperimentTest, DeterministicInSeed) {
  auto cfg = SmallConfig(StrategyKind::kDpAnt, EngineKind::kObliDb);
  auto a = RunExperiment(cfg);
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->queries[0].mean_l1, b->queries[0].mean_l1);
  EXPECT_EQ(a->final_total_mb, b->final_total_mb);
}

TEST(ExperimentTest, SeedChangesOutcome) {
  auto cfg = SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb);
  auto a = RunExperiment(cfg);
  cfg.seed = 12345;
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Some individual metric can coincide by chance on a small trace (Q1's
  // range filter often reports zero error under both seeds); the joint
  // outcome must differ.
  EXPECT_TRUE(a->queries[1].mean_l1 != b->queries[1].mean_l1 ||
              a->final_total_mb != b->final_total_mb ||
              a->dummy_synced != b->dummy_synced);
}

TEST(ExperimentTest, InitialDatabaseSupported) {
  auto cfg = SmallConfig(StrategyKind::kSur, EngineKind::kObliDb);
  cfg.initial_db_size = 100;
  auto r = RunExperiment(cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->queries[0].mean_l1, 0.0);
}

// ------------------------------------------- Storage backends & sharding

/// Everything the experiment reports, flattened for exact comparison.
std::vector<double> MetricVector(const ExperimentResult& r) {
  std::vector<double> v;
  for (const auto& q : r.queries) {
    v.push_back(q.mean_l1);
    v.push_back(q.max_l1);
    v.push_back(q.mean_qet);
    v.insert(v.end(), q.l1_error.value.begin(), q.l1_error.value.end());
    v.insert(v.end(), q.qet.value.begin(), q.qet.value.end());
  }
  v.insert(v.end(), r.logical_gap.value.begin(), r.logical_gap.value.end());
  v.insert(v.end(), r.total_mb.value.begin(), r.total_mb.value.end());
  v.insert(v.end(), r.dummy_mb.value.begin(), r.dummy_mb.value.end());
  v.push_back(r.mean_logical_gap);
  v.push_back(r.final_total_mb);
  v.push_back(r.final_dummy_mb);
  v.push_back(static_cast<double>(r.real_synced));
  v.push_back(static_cast<double>(r.dummy_synced));
  v.push_back(static_cast<double>(r.updates_posted));
  return v;
}

TEST(ExperimentTest, MetricsInvariantAcrossBackendsAndShardCounts) {
  // The acceptance bar for the storage-spine, per-shard ORAM, Query API
  // v2, epoch-snapshot, materialized-view and vectorized-execution
  // refactors: both engines, both backends, both storage methods (linear
  // and ORAM-indexed on ObliDB), shard counts {1, 4}, both analyst APIs,
  // materialized views on/off, AND vectorized execution on/off — every
  // reported metric bit-identical to the single-shard in-memory baseline
  // at the same seed. The baseline drives its schedule through the
  // legacy one-shot Query() shim with snapshot_scans OFF (the fully
  // per-table-serialized path) and vectorized_execution OFF (the scalar
  // row-at-a-time reference fold) while every variant runs prepared
  // queries over a session with snapshot_scans ON (linear scans pinned
  // to the committed-prefix epoch snapshot), so this
  // also proves the prepared path's results and cost metrics (virtual
  // QET, oram_*, revealed volumes folded into the series) identical to
  // the one-shot path, the snapshot scan identical to the locked scan,
  // and the O(1) view answers (Q1/Q2 are view-eligible; on Crypt-eps the
  // Laplace noise stream is part of the compared series) identical to
  // scanning, across engines x backends x shard counts. The vectorized
  // axis is the float-determinism acceptance bar: the columnar batch
  // fold (SUM/AVG over doubles included, via Q1/Q2's rewritten
  // aggregates) must reproduce the scalar fold's reduction order
  // bit-for-bit, or the L1/QET series — and on Crypt-eps the noise
  // stream seeded independently of the answers — would drift. Physical
  // storage placement, the oblivious index, the query API, the snapshot
  // execution mode, the view fast path and the execution engine must all
  // be unobservable in the simulation's outputs; only the ORAM health
  // block may differ.
  struct Variant {
    edb::StorageBackendKind backend;
    int num_shards;
  };
  const Variant variants[] = {
      {edb::StorageBackendKind::kInMemory, 1},
      {edb::StorageBackendKind::kInMemory, 4},
      {edb::StorageBackendKind::kSegmentLog, 1},
      {edb::StorageBackendKind::kSegmentLog, 4},
  };
  for (auto engine : {EngineKind::kObliDb, EngineKind::kCryptEps}) {
    for (bool indexed : {false, true}) {
      if (indexed && engine == EngineKind::kCryptEps) continue;
      auto base_cfg = SmallConfig(StrategyKind::kDpTimer, engine);
      base_cfg.yellow.horizon_minutes = 720;
      base_cfg.yellow.target_records = 350;
      base_cfg.green.horizon_minutes = 720;
      base_cfg.green.target_records = 400;
      base_cfg.params.flush_interval = 180;
      base_cfg.size_sample_interval = 90;
      base_cfg.use_oram_index = indexed;
      base_cfg.oram_capacity = 4096;  // small trees keep the sweep fast
      // Tight schedules so Q1/Q2 (and Q3's join path on ObliDB) all fire
      // several times inside the short horizon.
      for (auto& q : base_cfg.queries) {
        q.interval = (q.name == "Q3") ? 360 : 90;
      }
      base_cfg.query_api = QueryApi::kOneShot;
      base_cfg.snapshot_scans = false;
      base_cfg.materialized_views = false;
      base_cfg.vectorized_execution = false;
      auto baseline = RunExperiment(base_cfg);
      ASSERT_TRUE(baseline.ok()) << EngineKindName(engine);
      auto expect = MetricVector(baseline.value());
      ASSERT_FALSE(expect.empty());
      EXPECT_EQ(baseline->oram.enabled, indexed);
      // The one-shot shim prepares through the shared plan cache: every
      // firing after a query's first is a hit.
      EXPECT_GT(baseline->server_stats.plan_cache_hits, 0);
      for (const auto& variant : variants) {
        for (bool views : {false, true}) {
        for (bool vectorized : {false, true}) {
          auto cfg = base_cfg;
          cfg.query_api = QueryApi::kSession;
          cfg.snapshot_scans = true;
          cfg.materialized_views = views;
          cfg.vectorized_execution = vectorized;
          cfg.backend = variant.backend;
          cfg.num_shards = variant.num_shards;
          auto r = RunExperiment(cfg);
          ASSERT_TRUE(r.ok())
              << EngineKindName(engine) << " "
              << edb::StorageBackendKindName(variant.backend) << " x"
              << variant.num_shards << (indexed ? " indexed" : " linear")
              << (views ? " views" : "")
              << (vectorized ? " vectorized" : " scalar");
          auto got = MetricVector(r.value());
          ASSERT_EQ(got.size(), expect.size());
          for (size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], expect[i])
                << EngineKindName(engine) << " "
                << edb::StorageBackendKindName(variant.backend) << " x"
                << variant.num_shards << (indexed ? " indexed" : " linear")
                << (views ? " views" : "")
                << (vectorized ? " vectorized" : " scalar")
                << " metric index " << i;
          }
          // The ORAM did real per-shard work without perturbing any
          // metric (and the view path never short-circuits an indexed
          // scan — every oblivious touch still happens).
          EXPECT_EQ(r->oram.enabled, indexed);
          if (indexed) {
            EXPECT_EQ(r->oram.shard_access_counts.size(),
                      static_cast<size_t>(variant.num_shards));
            EXPECT_EQ(r->oram.access_count, baseline->oram.access_count);
            EXPECT_GT(r->oram.access_count, 0);
          }
          // Session sweeps prepare each scheduled query exactly once and
          // execute cached plans from then on.
          EXPECT_EQ(r->server_stats.plan_cache_hits, 0);
          EXPECT_EQ(r->server_stats.prepares,
                    static_cast<int64_t>(r->queries.size()));
          EXPECT_EQ(r->server_stats.plan_rebinds, 0);
          EXPECT_GT(r->server_stats.queries_executed, 0);
          // The variants really did take the paths they claim: the
          // baseline never touches the snapshot layer; indexed-mode scans
          // stay locked (and view-ineligible) whatever the knobs say;
          // linear scans go through the snapshot layer with views off,
          // and with views on every eligible execution (Q1/Q2 here) is an
          // O(1) view hit fed by per-flush delta folds, so the snapshot
          // layer goes quiet.
          EXPECT_EQ(baseline->server_stats.snapshot_scans, 0);
          EXPECT_EQ(baseline->server_stats.view_hits, 0);
          EXPECT_EQ(baseline->server_stats.view_folds, 0);
          if (indexed || views) {
            EXPECT_EQ(r->server_stats.snapshot_scans, 0);
          } else {
            EXPECT_GT(r->server_stats.snapshot_scans, 0);
          }
          if (views && !indexed) {
            EXPECT_GT(r->server_stats.view_hits, 0);
            EXPECT_GT(r->server_stats.view_folds, 0);
          } else {
            EXPECT_EQ(r->server_stats.view_hits, 0);
            EXPECT_EQ(r->server_stats.view_folds, 0);
          }
        }
        }
      }
    }
  }
}

TEST(ExperimentTest, UpdatePatternExposedForAnalysis) {
  auto r = RunExperiment(SmallConfig(StrategyKind::kSur, EngineKind::kObliDb));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->yellow_pattern.num_updates(), 100);
}

// ------------------------------------------------------------- Adversary

TEST(AdversaryTest, TimingAttackPerfectAgainstSur) {
  auto r = RunExperiment(SmallConfig(StrategyKind::kSur, EngineKind::kObliDb));
  ASSERT_TRUE(r.ok());
  auto trace = workload::GenerateTaxiTrace(
      SmallConfig(StrategyKind::kSur, EngineKind::kObliDb).yellow);
  auto report = RunTimingAttack(r->yellow_pattern, trace.ArrivalBits());
  // SUR uploads at exactly the arrival ticks: the attack is perfect.
  EXPECT_DOUBLE_EQ(report.precision, 1.0);
  EXPECT_DOUBLE_EQ(report.recall, 1.0);
  EXPECT_DOUBLE_EQ(report.per_tick_accuracy, 1.0);
}

TEST(AdversaryTest, TimingAttackDefeatedByDpTimer) {
  auto r =
      RunExperiment(SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb));
  ASSERT_TRUE(r.ok());
  auto trace = workload::GenerateTaxiTrace(
      SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb).yellow);
  auto report = RunTimingAttack(r->yellow_pattern, trace.ArrivalBits());
  // Updates land on the fixed T-grid with noisy volumes: per-tick recall
  // collapses (the adversary can only point at schedule ticks).
  EXPECT_LT(report.recall, 0.25);
}

TEST(AdversaryTest, WindowCountsNoisyUnderDp) {
  auto sur = RunExperiment(SmallConfig(StrategyKind::kSur, EngineKind::kObliDb));
  auto timer =
      RunExperiment(SmallConfig(StrategyKind::kDpTimer, EngineKind::kObliDb));
  ASSERT_TRUE(sur.ok());
  ASSERT_TRUE(timer.ok());
  auto trace = workload::GenerateTaxiTrace(
      SmallConfig(StrategyKind::kSur, EngineKind::kObliDb).yellow);
  auto bits = trace.ArrivalBits();
  // SUR reveals per-window counts exactly; DP-Timer's are noisy.
  EXPECT_DOUBLE_EQ(WindowCountError(sur->yellow_pattern, bits, 30), 0.0);
  EXPECT_GT(WindowCountError(timer->yellow_pattern, bits, 30), 0.2);
}

TEST(AdversaryTest, SetPatternIsDataIndependent) {
  auto cfg = SmallConfig(StrategyKind::kSet, EngineKind::kObliDb);
  auto r = RunExperiment(cfg);
  ASSERT_TRUE(r.ok());
  // Every tick posts volume exactly 1 — nothing about the data shows.
  for (const auto& e : r->yellow_pattern.events()) {
    if (e.t == 0) continue;
    EXPECT_EQ(e.volume, 1);
  }
}

}  // namespace
}  // namespace dpsync::sim
