// Tests for the distributed plan-shipping layer (src/dist/): the
// scatter-gather coordinator must be bit-identical to the single-process
// engines — answers (including grouped maps and the Crypt-eps Laplace
// noise stream), records_scanned, the virtual QET and the ORAM counters —
// across backends x server counts, because server k owns the contiguous
// global shard range [S*k/K, S*(k+1)/K) and the rank-order merge replays
// the exact single-process Add()/Merge() sequence. Also covered: typed
// Unavailable within the RPC deadline when a server dies, Setup/Update
// state machine, topology validation, racing owner appends through the
// coordinator (the CI TSan job leans on this), the multi-table TickAll
// fan-out, and the TCP transport.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/naive_strategies.h"
#include "dist/coordinator.h"
#include "edb/crypte_engine.h"
#include "edb/oblidb_engine.h"
#include "query/parser.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::dist {
namespace {

using testutil::Trip;
using workload::TripSchema;

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Bit-level equality of two responses: result (scalar or grouped, doubles
/// compared by bit pattern so -0.0 vs 0.0 or any rounding drift fails) and
/// the deterministic stats fields.
void ExpectBitIdentical(const edb::QueryResponse& dist,
                        const edb::QueryResponse& local) {
  EXPECT_EQ(dist.result.grouped, local.result.grouped);
  EXPECT_EQ(BitsOf(dist.result.scalar), BitsOf(local.result.scalar));
  ASSERT_EQ(dist.result.groups.size(), local.result.groups.size());
  auto it = local.result.groups.begin();
  for (const auto& [key, value] : dist.result.groups) {
    EXPECT_TRUE(key == it->first) << key.ToString() << " vs "
                                  << it->first.ToString();
    EXPECT_EQ(BitsOf(value), BitsOf(it->second));
    ++it;
  }
  EXPECT_EQ(dist.stats.records_scanned, local.stats.records_scanned);
  EXPECT_EQ(BitsOf(dist.stats.virtual_seconds),
            BitsOf(local.stats.virtual_seconds));
  EXPECT_EQ(dist.stats.oram_paths, local.stats.oram_paths);
  EXPECT_EQ(dist.stats.oram_buckets, local.stats.oram_buckets);
  EXPECT_EQ(BitsOf(dist.stats.oram_virtual_seconds),
            BitsOf(local.stats.oram_virtual_seconds));
  EXPECT_EQ(dist.stats.revealed_volume, local.stats.revealed_volume);
}

Record FareTrip(int64_t t, int64_t zone, double fare, bool dummy = false) {
  workload::TripRecord trip;
  trip.pick_time = t;
  trip.pickup_id = zone;
  trip.dropoff_id = zone;
  trip.trip_distance = 0.25 * static_cast<double>(t % 7);
  trip.fare = fare;
  trip.is_dummy = dummy;
  return trip.ToRecord();
}

std::vector<Record> MakeBatch(int64_t lo, int64_t hi) {
  std::vector<Record> batch;
  for (int64_t t = lo; t < hi; ++t) {
    // 0.1 is NOT exactly representable in binary, so these fares make
    // SUM/AVG genuinely order-sensitive: any deviation from the local
    // engine's span-aligned merge tree (a pre-merged per-server fold, a
    // rank swap) changes low-order bits and fails the identity checks.
    // Dyadic fares would mask exactly that class of bug.
    batch.push_back(FareTrip(t, 10 + (t % 5) * 10, 2.5 + 0.1 * (t % 11),
                             /*dummy=*/t % 9 == 0));
  }
  return batch;
}

const std::vector<std::string>& QuerySuite() {
  static const std::vector<std::string> kQueries = {
      "SELECT COUNT(*) FROM YellowCab",
      "SELECT SUM(fare) FROM YellowCab WHERE pickupID BETWEEN 20 AND 40",
      "SELECT AVG(fare) FROM YellowCab WHERE pickTime >= 12",
      "SELECT pickupID, COUNT(*) FROM YellowCab GROUP BY pickupID",
      "SELECT pickupID, SUM(fare) FROM YellowCab GROUP BY pickupID",
  };
  return kQueries;
}

/// The backend variants the bit-identity sweep covers, with a factory for
/// the single-process twin the coordinator must match.
struct Variant {
  const char* label;
  DistEngineKind engine;
  bool use_oram_index;
};

constexpr Variant kVariants[] = {
    {"oblidb-linear", DistEngineKind::kObliDb, false},
    {"oblidb-indexed", DistEngineKind::kObliDb, true},
    {"crypteps", DistEngineKind::kCryptEps, false},
};

constexpr int kGlobalShards = 6;

DistributedConfig MakeDistConfig(const Variant& v, int servers) {
  DistributedConfig cfg;
  cfg.engine = v.engine;
  cfg.num_servers = servers;
  cfg.oblidb.storage.num_shards = kGlobalShards;
  cfg.oblidb.use_oram_index = v.use_oram_index;
  cfg.oblidb.oram_capacity = 1 << 10;
  cfg.crypteps.storage.num_shards = kGlobalShards;
  return cfg;
}

/// Single-process twin with the identical global topology. Materialized
/// views are off on the twin for counter parity: the coordinator always
/// merges raw partials, so a view-answered local execution would diverge
/// in which counters moved (answers would still match).
std::unique_ptr<edb::EdbServer> MakeLocalTwin(const Variant& v) {
  if (v.engine == DistEngineKind::kCryptEps) {
    edb::CryptEpsConfig cfg;
    cfg.storage.num_shards = kGlobalShards;
    cfg.materialized_views = false;
    return std::make_unique<edb::CryptEpsServer>(cfg);
  }
  edb::ObliDbConfig cfg;
  cfg.storage.num_shards = kGlobalShards;
  cfg.use_oram_index = v.use_oram_index;
  cfg.oram_capacity = 1 << 10;
  cfg.materialized_views = false;
  return std::make_unique<edb::ObliDbServer>(cfg);
}

void RunIdentitySweep(const Variant& v, int servers) {
  SCOPED_TRACE(std::string(v.label) + " x " + std::to_string(servers) +
               " servers");
  DistributedEdbServer dist(MakeDistConfig(v, servers));
  ASSERT_OK(dist.init_status());
  auto local = MakeLocalTwin(v);

  auto dist_table = dist.CreateTable("YellowCab", TripSchema());
  auto local_table = local->CreateTable("YellowCab", TripSchema());
  ASSERT_OK(dist_table);
  ASSERT_OK(local_table);

  // Identical owner traffic: one setup batch, then incremental updates —
  // the same Pi_Setup / Pi_Update sequence on both sides.
  ASSERT_OK(dist_table.value()->Setup(MakeBatch(0, 40)));
  ASSERT_OK(local_table.value()->Setup(MakeBatch(0, 40)));
  for (int64_t t = 40; t < 64; t += 8) {
    ASSERT_OK(dist_table.value()->Update(MakeBatch(t, t + 8)));
    ASSERT_OK(local_table.value()->Update(MakeBatch(t, t + 8)));
  }
  EXPECT_EQ(dist.total_outsourced_records(), local->total_outsourced_records());
  EXPECT_EQ(dist.total_outsourced_bytes(), local->total_outsourced_bytes());

  // Identical query sequence, in the same order on both sides — for
  // Crypt-eps this is what makes the two Laplace noise streams line up,
  // so even the NOISY answers must agree bit for bit.
  for (const auto& sql : QuerySuite()) {
    SCOPED_TRACE(sql);
    auto q = query::ParseSelect(sql);
    ASSERT_OK(q);
    auto dist_resp = dist.Query(q.value());
    auto local_resp = local->Query(q.value());
    ASSERT_OK(dist_resp);
    ASSERT_OK(local_resp);
    ExpectBitIdentical(dist_resp.value(), local_resp.value());
  }

  if (v.engine == DistEngineKind::kCryptEps) {
    auto crypteps = static_cast<edb::CryptEpsServer*>(local.get());
    EXPECT_EQ(dist.consumed_query_budget(), crypteps->consumed_query_budget());
  }

  // The distributed counters: one scatter per execution, one partial per
  // server per scatter.
  auto stats = dist.stats();
  EXPECT_EQ(stats.remote_scatters,
            static_cast<int64_t>(QuerySuite().size()));
  EXPECT_EQ(stats.remote_partials,
            static_cast<int64_t>(QuerySuite().size()) * servers);
  EXPECT_EQ(local->stats().remote_scatters, 0);
  EXPECT_EQ(stats.snapshot_scans, local->stats().snapshot_scans);
}

TEST(DistBitIdentityTest, MatchesLocalEngineAcrossBackendsAndServerCounts) {
  for (const auto& v : kVariants) {
    for (int servers : {1, 4}) {
      RunIdentitySweep(v, servers);
    }
  }
}

TEST(DistTransportTest, TcpLoopbackMatchesSocketpair) {
  Variant v{"oblidb-linear", DistEngineKind::kObliDb, false};
  DistributedConfig tcp_cfg = MakeDistConfig(v, 2);
  tcp_cfg.use_tcp = true;
  DistributedEdbServer tcp(tcp_cfg);
  ASSERT_OK(tcp.init_status());
  DistributedEdbServer sp(MakeDistConfig(v, 2));
  ASSERT_OK(sp.init_status());

  for (auto* server : {&tcp, &sp}) {
    auto table = server->CreateTable("YellowCab", TripSchema());
    ASSERT_OK(table);
    ASSERT_OK(table.value()->Setup(MakeBatch(0, 32)));
  }
  auto q = query::ParseSelect(
      "SELECT SUM(fare) FROM YellowCab WHERE pickupID = 30");
  ASSERT_OK(q);
  auto a = tcp.Query(q.value());
  auto b = sp.Query(q.value());
  ASSERT_OK(a);
  ASSERT_OK(b);
  ExpectBitIdentical(a.value(), b.value());
}

TEST(DistTransportTest, RpcAndByteCountersAreDeterministic) {
  Variant v{"oblidb-linear", DistEngineKind::kObliDb, false};
  auto run = [&](DistributedEdbServer& server) {
    auto table = server.CreateTable("YellowCab", TripSchema());
    ASSERT_OK(table);
    ASSERT_OK(table.value()->Setup(MakeBatch(0, 16)));
    ASSERT_OK(table.value()->Update(MakeBatch(16, 24)));
    auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
    ASSERT_OK(q);
    ASSERT_OK(server.Query(q.value()));
    ASSERT_OK(server.Query(q.value()));
  };
  DistributedEdbServer a(MakeDistConfig(v, 3));
  DistributedEdbServer b(MakeDistConfig(v, 3));
  ASSERT_OK(a.init_status());
  ASSERT_OK(b.init_status());
  run(a);
  run(b);
  EXPECT_GT(a.rpc_calls(), 0);
  EXPECT_GT(a.bytes_shipped(), 0);
  EXPECT_EQ(a.rpc_calls(), b.rpc_calls());
  EXPECT_EQ(a.bytes_shipped(), b.bytes_shipped());
}

// ------------------------------------------------------ failure semantics

TEST(DistFailureTest, KilledServerYieldsUnavailableWithinDeadline) {
  DistributedConfig cfg =
      MakeDistConfig({"oblidb-linear", DistEngineKind::kObliDb, false}, 4);
  cfg.rpc_timeout_seconds = 2.0;
  DistributedEdbServer dist(cfg);
  ASSERT_OK(dist.init_status());
  auto table = dist.CreateTable("YellowCab", TripSchema());
  ASSERT_OK(table);
  ASSERT_OK(table.value()->Setup(MakeBatch(0, 24)));

  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_OK(q);
  ASSERT_OK(dist.Query(q.value()));

  ASSERT_OK(dist.KillServer(2));
  EXPECT_EQ(dist.KillServer(7).code(), StatusCode::kOutOfRange);

  auto start = std::chrono::steady_clock::now();
  auto resp = dist.Query(q.value());
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  // The error names the failing rank, and arrives well inside the
  // 2-second RPC deadline plus sanitizer headroom — never a hang.
  EXPECT_NE(resp.status().message().find("shard server 2"), std::string::npos)
      << resp.status().ToString();
  EXPECT_LT(elapsed, 30.0);

  // Owner traffic reaching the dead server fails the same way. Updates
  // ship only to the ranks the batch's records route to (FNV-1a over the
  // payload bytes — content-dependent, and the fare arithmetic's low bits
  // vary with FP contraction across build modes), so no single small
  // batch is guaranteed to touch rank 2: keep shipping until one does.
  // Each 8-record batch misses one of 4 ranks with probability ~(3/4)^8,
  // so 40 batches never landing on rank 2 would be a routing bug.
  Status up = Status::Ok();
  for (int64_t lo = 24; up.ok() && lo < 24 + 40 * 8; lo += 8) {
    up = table.value()->Update(MakeBatch(lo, lo + 8));
  }
  ASSERT_FALSE(up.ok());
  EXPECT_EQ(up.code(), StatusCode::kUnavailable);
  EXPECT_NE(up.message().find("shard server 2"), std::string::npos)
      << up.ToString();
}

// --------------------------------------------------- state machine + init

TEST(DistStateMachineTest, SetupAndUpdateOrderingEnforced) {
  DistributedEdbServer dist(
      MakeDistConfig({"oblidb-linear", DistEngineKind::kObliDb, false}, 2));
  ASSERT_OK(dist.init_status());
  auto table = dist.CreateTable("YellowCab", TripSchema());
  ASSERT_OK(table);
  auto early = table.value()->Update(MakeBatch(0, 4));
  EXPECT_EQ(early.code(), StatusCode::kFailedPrecondition);
  ASSERT_OK(table.value()->Setup(MakeBatch(0, 8)));
  auto again = table.value()->Setup(MakeBatch(8, 12));
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(dist.CreateTable("YellowCab", TripSchema()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DistInitTest, BadTopologyReportsInvalidArgument) {
  {
    DistributedConfig cfg =
        MakeDistConfig({"oblidb-linear", DistEngineKind::kObliDb, false}, 0);
    DistributedEdbServer dist(cfg);
    EXPECT_EQ(dist.init_status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(dist.CreateTable("T", TripSchema()).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // More servers than global shards: some server would own nothing.
    DistributedConfig cfg = MakeDistConfig(
        {"oblidb-linear", DistEngineKind::kObliDb, false}, kGlobalShards + 1);
    DistributedEdbServer dist(cfg);
    EXPECT_EQ(dist.init_status().code(), StatusCode::kInvalidArgument);
  }
  {
    DistributedConfig cfg =
        MakeDistConfig({"oblidb-linear", DistEngineKind::kObliDb, false}, 2);
    cfg.oblidb.storage.flush_every_update = false;
    DistributedEdbServer dist(cfg);
    EXPECT_EQ(dist.init_status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(DistPlannerTest, JoinsRejectedAtPrepare) {
  DistributedEdbServer dist(
      MakeDistConfig({"oblidb-linear", DistEngineKind::kObliDb, false}, 2));
  ASSERT_OK(dist.init_status());
  ASSERT_OK(dist.CreateTable("YellowCab", TripSchema()));
  ASSERT_OK(dist.CreateTable("GreenTaxi", TripSchema()));
  auto session = dist.CreateSession();
  EXPECT_NOT_OK(session->Prepare(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime"));
}

TEST(DistBudgetTest, CryptEpsBudgetEnforcedAcrossTheWire) {
  DistributedConfig cfg =
      MakeDistConfig({"crypteps", DistEngineKind::kCryptEps, false}, 2);
  cfg.crypteps.query_epsilon = 3.0;
  cfg.crypteps.total_budget_limit = 6.0;  // two queries' worth
  DistributedEdbServer dist(cfg);
  ASSERT_OK(dist.init_status());
  auto table = dist.CreateTable("YellowCab", TripSchema());
  ASSERT_OK(table);
  ASSERT_OK(table.value()->Setup(MakeBatch(0, 16)));
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  ASSERT_OK(q);
  ASSERT_OK(dist.Query(q.value()));
  ASSERT_OK(dist.Query(q.value()));
  auto third = dist.Query(q.value());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(dist.consumed_query_budget(), 6.0);
}

// ----------------------------------------------------- racing owner writes

TEST(DistConcurrencyTest, QueriesRaceOwnerAppendsThroughTheCoordinator) {
  DistributedEdbServer dist(
      MakeDistConfig({"oblidb-linear", DistEngineKind::kObliDb, false}, 4));
  ASSERT_OK(dist.init_status());
  auto table = dist.CreateTable("YellowCab", TripSchema());
  ASSERT_OK(table);
  ASSERT_OK(table.value()->Setup(MakeBatch(0, 16)));

  auto q = query::ParseSelect("SELECT SUM(fare) FROM YellowCab");
  ASSERT_OK(q);
  constexpr int kAppendBatches = 12;
  std::thread owner([&] {
    for (int i = 0; i < kAppendBatches; ++i) {
      int64_t lo = 16 + i * 4;
      ASSERT_OK(table.value()->Update(MakeBatch(lo, lo + 4)));
    }
  });
  auto session = dist.CreateSession();
  auto prepared = session->Prepare("SELECT SUM(fare) FROM YellowCab");
  ASSERT_OK(prepared);
  for (int i = 0; i < 20; ++i) {
    auto resp = session->Execute(prepared.value());
    ASSERT_OK(resp);
    // Every answer reflects some committed prefix: scanned row counts are
    // monotone between the pre-race floor and the final total.
    EXPECT_GE(resp->stats.records_scanned, 16);
    EXPECT_LE(resp->stats.records_scanned, 16 + kAppendBatches * 4);
  }
  owner.join();

  auto final_count = dist.Query(query::ParseSelect(
                                    "SELECT COUNT(*) FROM YellowCab")
                                    .value());
  ASSERT_OK(final_count);
  EXPECT_EQ(final_count->stats.records_scanned, 16 + kAppendBatches * 4);
}

// ------------------------------------------------- multi-table TickAll

TEST(DistMultiTableTest, TickAllMatchesSequentialTicks) {
  // Two coordinators with identical seeds/topology: one driven by the
  // parallel TickAll fan-out, the twin by sequential TickBatch calls. All
  // owner-side ground truth and the outsourced state must agree exactly.
  auto make = [] {
    return std::make_unique<DistributedEdbServer>(MakeDistConfig(
        {"oblidb-linear", DistEngineKind::kObliDb, false}, 2));
  };
  auto parallel_server = make();
  auto sequential_server = make();
  ASSERT_OK(parallel_server->init_status());
  ASSERT_OK(sequential_server->init_status());

  const std::vector<std::string> kTables = {"YellowCab", "GreenTaxi",
                                            "FhvTrips"};
  struct Owned {
    std::unique_ptr<DpSyncEngine> engine;
  };
  auto build_engines = [&](DistributedEdbServer* server) {
    std::vector<Owned> engines;
    for (size_t i = 0; i < kTables.size(); ++i) {
      auto table = server->CreateTable(kTables[i], TripSchema());
      EXPECT_OK(table);
      engines.push_back({std::make_unique<DpSyncEngine>(
          std::make_unique<SurStrategy>(), table.value(),
          workload::MakeTripDummyFactory(1000 + i), /*seed=*/77 + i)});
      EXPECT_OK(engines.back().engine->Setup(MakeBatch(0, 8)));
    }
    return engines;
  };
  auto par = build_engines(parallel_server.get());
  auto seq = build_engines(sequential_server.get());

  for (int64_t t = 0; t < 10; ++t) {
    std::vector<std::pair<DpSyncEngine*, std::vector<Record>>> work;
    for (size_t i = 0; i < kTables.size(); ++i) {
      work.emplace_back(par[i].engine.get(),
                        MakeBatch(8 + t * 3 + i, 8 + t * 3 + i + 2));
    }
    ASSERT_OK(DpSyncEngine::TickAll(std::move(work)));
    for (size_t i = 0; i < kTables.size(); ++i) {
      ASSERT_OK(seq[i].engine->TickBatch(
          MakeBatch(8 + t * 3 + i, 8 + t * 3 + i + 2)));
    }
  }

  for (size_t i = 0; i < kTables.size(); ++i) {
    const auto& a = par[i].engine->counters();
    const auto& b = seq[i].engine->counters();
    EXPECT_EQ(a.received_total, b.received_total);
    EXPECT_EQ(a.real_synced, b.real_synced);
    EXPECT_EQ(a.dummy_synced, b.dummy_synced);
    EXPECT_EQ(a.updates_posted, b.updates_posted);
    EXPECT_EQ(par[i].engine->logical_gap(), seq[i].engine->logical_gap());
    EXPECT_EQ(par[i].engine->backend_commit_epoch(),
              seq[i].engine->backend_commit_epoch());
  }
  EXPECT_EQ(parallel_server->total_outsourced_records(),
            sequential_server->total_outsourced_records());

  for (const auto& name : kTables) {
    auto q = query::ParseSelect("SELECT COUNT(*) FROM " + name);
    ASSERT_OK(q);
    auto a = parallel_server->Query(q.value());
    auto b = sequential_server->Query(q.value());
    ASSERT_OK(a);
    ASSERT_OK(b);
    ExpectBitIdentical(a.value(), b.value());
  }
}

}  // namespace
}  // namespace dpsync::dist
