// Tests for the synthetic taxi workload: schema/serialization, generation
// invariants (the preprocessing properties of §8), persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "workload/taxi_generator.h"
#include "workload/trip_record.h"

namespace dpsync::workload {
namespace {

TEST(TripRecordTest, RowRoundTrip) {
  TripRecord t;
  t.pick_time = 1234;
  t.pickup_id = 42;
  t.dropoff_id = 7;
  t.trip_distance = 3.5;
  t.fare = 12.25;
  t.is_dummy = false;
  TripRecord back = TripRecord::FromRow(t.ToRow());
  EXPECT_EQ(back.pick_time, 1234);
  EXPECT_EQ(back.pickup_id, 42);
  EXPECT_EQ(back.dropoff_id, 7);
  EXPECT_DOUBLE_EQ(back.trip_distance, 3.5);
  EXPECT_DOUBLE_EQ(back.fare, 12.25);
  EXPECT_FALSE(back.is_dummy);
}

TEST(TripRecordTest, RecordRoundTrip) {
  TripRecord t;
  t.pick_time = 99;
  t.pickup_id = 5;
  Record r = t.ToRecord();
  EXPECT_FALSE(r.is_dummy);
  auto back = TripRecord::FromRecord(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->pick_time, 99);
}

TEST(TripRecordTest, SchemaHasDummyFlag) {
  EXPECT_TRUE(TripSchema().HasDummyFlag());
  EXPECT_EQ(TripSchema().size(), 6u);
}

TEST(TripRecordTest, PayloadFitsRecordCipher) {
  TripRecord t;
  t.pick_time = 43199;
  t.pickup_id = 265;
  t.dropoff_id = 265;
  t.trip_distance = 39.99;
  t.fare = 133.7;
  t.is_dummy = true;
  // kPlaintextSize - 2 bytes of length header must accommodate the row.
  EXPECT_LE(t.ToRecord().payload.size(), 62u);
}

TEST(DummyFactoryTest, ProducesValidDummies) {
  auto factory = MakeTripDummyFactory(1);
  for (int i = 0; i < 100; ++i) {
    Record r = factory();
    EXPECT_TRUE(r.is_dummy);
    auto trip = TripRecord::FromRecord(r);
    ASSERT_TRUE(trip.ok());
    EXPECT_TRUE(trip->is_dummy);
    EXPECT_GE(trip->pickup_id, 1);
    EXPECT_LE(trip->pickup_id, 265);
  }
}

TEST(DummyFactoryTest, DummiesVary) {
  auto factory = MakeTripDummyFactory(2);
  Record a = factory(), b = factory();
  EXPECT_NE(a.payload, b.payload);
}

TEST(TaxiGeneratorTest, DeterministicInSeed) {
  TaxiConfig cfg;
  cfg.horizon_minutes = 2000;
  cfg.target_records = 500;
  auto a = GenerateTaxiTrace(cfg);
  auto b = GenerateTaxiTrace(cfg);
  EXPECT_EQ(a.record_count(), b.record_count());
  EXPECT_EQ(a.ArrivalBits(), b.ArrivalBits());
}

TEST(TaxiGeneratorTest, DifferentSeedsDiffer) {
  TaxiConfig cfg;
  cfg.horizon_minutes = 2000;
  cfg.target_records = 500;
  auto a = GenerateTaxiTrace(cfg);
  cfg.seed = 999;
  auto b = GenerateTaxiTrace(cfg);
  EXPECT_NE(a.ArrivalBits(), b.ArrivalBits());
}

TEST(TaxiGeneratorTest, AtMostOneRecordPerMinute) {
  TaxiConfig cfg;
  cfg.horizon_minutes = 5000;
  cfg.target_records = 3000;
  auto trace = GenerateTaxiTrace(cfg);
  EXPECT_EQ(trace.arrivals.size(), 5000u);  // one slot per minute, by type
}

TEST(TaxiGeneratorTest, RecordCountNearTarget) {
  TaxiConfig cfg;  // paper defaults: 43200 min, 18429 records
  auto trace = GenerateTaxiTrace(cfg);
  double realized = static_cast<double>(trace.record_count());
  EXPECT_NEAR(realized, 18429.0, 18429.0 * 0.03);
}

TEST(TaxiGeneratorTest, PickTimeMatchesSlot) {
  TaxiConfig cfg;
  cfg.horizon_minutes = 3000;
  cfg.target_records = 1500;
  auto trace = GenerateTaxiTrace(cfg);
  for (size_t t = 0; t < trace.arrivals.size(); ++t) {
    if (trace.arrivals[t]) {
      EXPECT_EQ(trace.arrivals[t]->pick_time, static_cast<int64_t>(t));
    }
  }
}

TEST(TaxiGeneratorTest, ZonesInRange) {
  TaxiConfig cfg;
  cfg.horizon_minutes = 4000;
  cfg.target_records = 2500;
  auto trace = GenerateTaxiTrace(cfg);
  for (const auto& a : trace.arrivals) {
    if (!a) continue;
    EXPECT_GE(a->pickup_id, 1);
    EXPECT_LE(a->pickup_id, cfg.num_zones);
    EXPECT_GE(a->dropoff_id, 1);
    EXPECT_LE(a->dropoff_id, cfg.num_zones);
    EXPECT_GT(a->trip_distance, 0);
    EXPECT_GE(a->fare, 2.5);
    EXPECT_FALSE(a->is_dummy);
  }
}

TEST(TaxiGeneratorTest, DiurnalShape) {
  // Rush hours must be busier than 3am.
  EXPECT_GT(DiurnalIntensity(8 * 60 + 30), 2.0 * DiurnalIntensity(3 * 60));
  EXPECT_GT(DiurnalIntensity(18 * 60), 2.0 * DiurnalIntensity(3 * 60));
}

TEST(TaxiGeneratorTest, ArrivalsFollowDiurnalCurve) {
  TaxiConfig cfg;  // full month for stable statistics
  auto trace = GenerateTaxiTrace(cfg);
  int64_t night = 0, evening = 0;
  for (size_t t = 0; t < trace.arrivals.size(); ++t) {
    if (!trace.arrivals[t]) continue;
    int64_t mod = static_cast<int64_t>(t) % 1440;
    if (mod >= 2 * 60 && mod < 4 * 60) ++night;        // 2-4 am
    if (mod >= 17 * 60 && mod < 19 * 60) ++evening;    // 5-7 pm
  }
  EXPECT_GT(evening, night * 2);
}

TEST(TaxiGeneratorTest, SaveLoadRoundTrip) {
  TaxiConfig cfg;
  cfg.horizon_minutes = 1500;
  cfg.target_records = 700;
  auto trace = GenerateTaxiTrace(cfg);
  std::string path = testing::TempDir() + "/dpsync_trace_test.csv";
  ASSERT_TRUE(SaveTrace(trace, path).ok());
  auto loaded = LoadTrace(cfg, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->record_count(), trace.record_count());
  EXPECT_EQ(loaded->ArrivalBits(), trace.ArrivalBits());
  std::remove(path.c_str());
}

TEST(TaxiGeneratorTest, LoadRejectsOutOfHorizonRows) {
  TaxiConfig small;
  small.horizon_minutes = 100;
  TaxiConfig big;
  big.horizon_minutes = 5000;
  big.target_records = 2000;
  auto trace = GenerateTaxiTrace(big);
  std::string path = testing::TempDir() + "/dpsync_trace_test2.csv";
  ASSERT_TRUE(SaveTrace(trace, path).ok());
  EXPECT_FALSE(LoadTrace(small, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpsync::workload
