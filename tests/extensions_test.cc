// Tests for the extension features: the TLC CSV loader (with the paper's
// preprocessing), multi-record-per-tick arrivals, geometric-noise strategy
// variants, the L-1 StealthDB engine + volume-padding countermeasure, and
// the Crypt-eps analyst budget limit.
#include <gtest/gtest.h>

#include <fstream>

#include "core/dp_timer.h"
#include "core/engine.h"
#include "core/naive_strategies.h"
#include "edb/crypte_engine.h"
#include "edb/volume_hiding.h"
#include "query/parser.h"
#include "test_util.h"
#include "workload/tlc_loader.h"
#include "workload/trip_record.h"

namespace dpsync {
namespace {

using workload::TripRecord;

// ------------------------------------------------------------ TLC loader

class TlcLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/dpsync_tlc_test.csv";
    std::ofstream out(path_);
    // Header mirrors the 2020 Yellow layout (11 columns; we only read 5).
    out << "VendorID,tpep_pickup_datetime,tpep_dropoff_datetime,passenger_"
           "count,trip_distance,RatecodeID,store_and_fwd_flag,PULocationID,"
           "DOLocationID,payment_type,fare_amount\n";
    auto row = [&](const std::string& ts, const std::string& pu,
                   const std::string& doo, const std::string& dist,
                   const std::string& fare) {
      out << "1," << ts << ",2020-06-01 00:20:00,1," << dist << ",1,N," << pu
          << "," << doo << ",1," << fare << "\n";
    };
    row("2020-06-01 00:08:42", "132", "45", "3.2", "14.5");   // kept, min 8
    row("2020-06-01 00:08:59", "100", "10", "1.0", "5.0");    // dup minute 8
    row("2020-06-02 13:30:00", "7", "7", "0.5", "3.0");       // kept
    row("2020-05-31 23:59:00", "1", "1", "1.0", "4.0");       // out of month
    row("2020-06-15 07:00:00", "999", "45", "1.0", "4.0");    // bad zone
    row("2020-06-15 07:01:00", "45", "45", "-2.0", "4.0");    // bad distance
    row("garbage-timestamp", "45", "45", "1.0", "4.0");       // bad ts
    row("2020-06-30 23:59:00", "265", "1", "2.0", "9.0");     // kept, last min
  }

  std::string path_;
};

TEST_F(TlcLoaderTest, AppliesPaperPreprocessing) {
  workload::TlcLoadOptions opt;
  workload::TlcLoadStats stats;
  auto trace = workload::LoadTlcCsv(path_, opt, &stats);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(stats.rows_read, 8);
  EXPECT_EQ(stats.kept, 3);
  EXPECT_EQ(stats.duplicates_dropped, 1);
  EXPECT_EQ(stats.invalid_dropped, 2);      // bad zone, bad distance
  EXPECT_EQ(stats.out_of_month_dropped, 2);  // May row + garbage timestamp
  EXPECT_EQ(trace->record_count(), 3);
  EXPECT_EQ(trace->config.horizon_minutes, 43200);
}

TEST_F(TlcLoaderTest, MapsTimestampsToMinuteSlots) {
  workload::TlcLoadOptions opt;
  auto trace = workload::LoadTlcCsv(path_, opt, nullptr);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(trace->arrivals[8].has_value());  // 00:08 on day 1
  EXPECT_EQ(trace->arrivals[8]->pickup_id, 132);
  EXPECT_DOUBLE_EQ(trace->arrivals[8]->trip_distance, 3.2);
  // Day 2, 13:30 -> 1440 + 13*60 + 30.
  EXPECT_TRUE(trace->arrivals[1440 + 13 * 60 + 30].has_value());
  // Last minute of the month.
  EXPECT_TRUE(trace->arrivals[43200 - 1].has_value());
}

TEST_F(TlcLoaderTest, MissingFileFails) {
  workload::TlcLoadOptions opt;
  EXPECT_FALSE(workload::LoadTlcCsv("/no/such/file.csv", opt).ok());
}

TEST(ParseTlcMinuteTest, ParsesAndValidates) {
  workload::TlcLoadOptions opt;  // June 2020
  EXPECT_EQ(workload::ParseTlcMinute("2020-06-01 00:00:00", opt), 0);
  EXPECT_EQ(workload::ParseTlcMinute("2020-06-01 01:30:59", opt), 90);
  EXPECT_EQ(workload::ParseTlcMinute("2020-06-30 23:59:00", opt), 43199);
  EXPECT_EQ(workload::ParseTlcMinute("2020-07-01 00:00:00", opt), -1);
  EXPECT_EQ(workload::ParseTlcMinute("2019-06-01 00:00:00", opt), -1);
  EXPECT_EQ(workload::ParseTlcMinute("2020-06-31 00:00:00", opt), -1);
  EXPECT_EQ(workload::ParseTlcMinute("not a time", opt), -1);
  EXPECT_EQ(workload::ParseTlcMinute("", opt), -1);
}

// ----------------------------------------------- Multi-record arrivals

class NullBackend : public SogdbBackend {
 public:
  Status Setup(const std::vector<Record>&) override { return Status::Ok(); }
  Status Update(const std::vector<Record>& g) override {
    count_ += static_cast<int64_t>(g.size());
    return Status::Ok();
  }
  int64_t outsourced_count() const override { return count_; }
  int64_t count_ = 0;
};

Record SomeRecord(int64_t t) {
  TripRecord trip;
  trip.pick_time = t;
  return trip.ToRecord();
}

TEST(TickBatchTest, SurSyncsWholeBatch) {
  NullBackend backend;
  DpSyncEngine engine(std::make_unique<SurStrategy>(), &backend,
                      workload::MakeTripDummyFactory(1), 2);
  ASSERT_TRUE(engine.Setup({}).ok());
  ASSERT_TRUE(engine.TickBatch({SomeRecord(1), SomeRecord(1), SomeRecord(1)})
                  .ok());
  EXPECT_EQ(backend.count_, 3);
  EXPECT_EQ(engine.logical_gap(), 0);
}

TEST(TickBatchTest, TimerCountsAllArrivals) {
  NullBackend backend;
  DpTimerConfig cfg;
  cfg.period = 10;
  cfg.epsilon = 100.0;  // ~noiseless
  cfg.flush_interval = 0;
  DpSyncEngine engine(std::make_unique<DpTimerStrategy>(cfg), &backend,
                      workload::MakeTripDummyFactory(3), 4);
  ASSERT_TRUE(engine.Setup({}).ok());
  for (int t = 1; t <= 10; ++t) {
    ASSERT_TRUE(engine.TickBatch({SomeRecord(t), SomeRecord(t)}).ok());
  }
  // 20 arrivals in the window; near-noiseless count fetches ~20.
  EXPECT_NEAR(static_cast<double>(backend.count_), 20.0, 1.0);
  EXPECT_EQ(engine.counters().received_total, 20);
}

TEST(TickBatchTest, EmptyBatchIsANullUpdate) {
  NullBackend backend;
  DpSyncEngine engine(std::make_unique<SurStrategy>(), &backend,
                      workload::MakeTripDummyFactory(5), 6);
  ASSERT_TRUE(engine.Setup({}).ok());
  ASSERT_TRUE(engine.TickBatch({}).ok());
  EXPECT_EQ(engine.now(), 1);
  EXPECT_EQ(backend.count_, 0);
}

// ------------------------------------------------------- Geometric noise

TEST(NoiseKindTest, PerturbCountWithDispatches) {
  Rng rng(7);
  // Geometric is integer-valued by construction; Laplace rounds. Both must
  // stay near the true count at high epsilon.
  for (auto kind : {dp::NoiseKind::kLaplace, dp::NoiseKind::kGeometric}) {
    int64_t v = dp::PerturbCountWith(kind, 50.0, 42, &rng);
    EXPECT_NEAR(static_cast<double>(v), 42.0, 2.0) << dp::NoiseKindName(kind);
  }
}

TEST(NoiseKindTest, TimerWithGeometricNoiseStillTracksCounts) {
  DpTimerConfig cfg;
  cfg.period = 10;
  cfg.epsilon = 2.0;
  cfg.noise = dp::NoiseKind::kGeometric;
  cfg.flush_interval = 0;
  DpTimerStrategy timer(cfg);
  Rng rng(8);
  int64_t fetched = 0;
  int64_t windows = 0;
  for (int t = 1; t <= 1000; ++t) {
    for (const auto& d : timer.OnTick(t, 1, &rng)) fetched += d.fetch_count;
    if (t % 10 == 0) ++windows;
  }
  EXPECT_NEAR(static_cast<double>(fetched) / static_cast<double>(windows),
              10.0, 2.0);
}

TEST(NoiseKindTest, NamesAreStable) {
  EXPECT_STREQ(dp::NoiseKindName(dp::NoiseKind::kLaplace), "laplace");
  EXPECT_STREQ(dp::NoiseKindName(dp::NoiseKind::kGeometric), "geometric");
}

// ------------------------------------------- L-1 engine + volume padding

using testutil::Trip;

TEST(NextPowerOfTwoTest, Values) {
  EXPECT_EQ(edb::NextPowerOfTwo(-3), 1);
  EXPECT_EQ(edb::NextPowerOfTwo(0), 1);
  EXPECT_EQ(edb::NextPowerOfTwo(1), 1);
  EXPECT_EQ(edb::NextPowerOfTwo(2), 2);
  EXPECT_EQ(edb::NextPowerOfTwo(3), 4);
  EXPECT_EQ(edb::NextPowerOfTwo(17), 32);
  EXPECT_EQ(edb::NextPowerOfTwo(1024), 1024);
  EXPECT_EQ(edb::NextPowerOfTwo(1025), 2048);
}

TEST(StealthDbTest, RevealsExactResponseVolume) {
  edb::StealthDbServer server;
  auto t = server.CreateTable("YellowCab", workload::TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t.value()
                  ->Setup({Trip(1, 60), Trip(2, 70), Trip(3, 200),
                           Trip(4, 60, /*dummy=*/true)})
                  .ok());
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  auto r = server.Query(q.value());
  ASSERT_TRUE(r.ok());
  // Volume = real matching records only: the dummy never matches, so the
  // server learns the true count -> the L-1 leak.
  EXPECT_EQ(r->stats.revealed_volume, 2);
  EXPECT_EQ(server.leakage().query_class, edb::LeakageClass::kL1);
}

TEST(StealthDbTest, L1IsConditionallyCompatible) {
  edb::StealthDbServer server;
  auto verdict = edb::CheckCompatibility(server.leakage());
  EXPECT_TRUE(verdict.compatible);
  EXPECT_TRUE(verdict.needs_volume_padding);
}

TEST(VolumePaddingTest, PadsToPowerOfTwo) {
  edb::StealthDbServer inner;
  edb::VolumePaddedServer server(&inner);
  auto t = server.CreateTable("YellowCab", workload::TripSchema());
  ASSERT_TRUE(t.ok());
  std::vector<Record> records;
  for (int64_t i = 0; i < 5; ++i) records.push_back(Trip(i, 60));
  ASSERT_TRUE(t.value()->Setup(records).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  auto r = server.Query(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.revealed_volume, 8);  // 5 -> next pow2
  // Result itself is unchanged by the padding (it affects leakage only).
  EXPECT_DOUBLE_EQ(r->result.scalar, 5.0);
}

TEST(VolumePaddingTest, UpgradesLeakageClass) {
  edb::StealthDbServer inner;
  edb::VolumePaddedServer server(&inner);
  EXPECT_EQ(server.leakage().query_class, edb::LeakageClass::kL0);
  auto verdict = edb::CheckCompatibility(server.leakage());
  EXPECT_TRUE(verdict.compatible);
  EXPECT_FALSE(verdict.needs_volume_padding);
  EXPECT_EQ(server.name(), "StealthDB+pad");
}

// ------------------------------------------------ Crypt-eps budget limit

TEST(CryptBudgetTest, RefusesAfterLimit) {
  edb::CryptEpsConfig cfg;
  cfg.query_epsilon = 3.0;
  cfg.total_budget_limit = 7.0;  // allows exactly 2 queries
  edb::CryptEpsServer server(cfg);
  auto t = server.CreateTable("YellowCab", workload::TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t.value()->Setup({Trip(1, 60)}).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  EXPECT_TRUE(server.Query(q.value()).ok());
  EXPECT_TRUE(server.Query(q.value()).ok());
  auto third = server.Query(q.value());
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kPermissionDenied);
  EXPECT_DOUBLE_EQ(server.consumed_query_budget(), 6.0);
}

TEST(CryptBudgetTest, ZeroLimitMeansUnlimited) {
  edb::CryptEpsConfig cfg;
  cfg.total_budget_limit = 0.0;
  edb::CryptEpsServer server(cfg);
  auto t = server.CreateTable("YellowCab", workload::TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t.value()->Setup({Trip(1, 60)}).ok());
  auto q = query::ParseSelect("SELECT COUNT(*) FROM YellowCab");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(server.Query(q.value()).ok());
}

}  // namespace
}  // namespace dpsync
