// Tests for the continual-observation binary counter: exactness of the
// underlying block decomposition, error scaling, and the DP property of
// the whole transcript on neighboring streams.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/stats.h"
#include "dp/binary_counter.h"

namespace dpsync::dp {
namespace {

TEST(BinaryCounterTest, NoiselessLimitIsExact) {
  // With a huge budget the noise vanishes and the block decomposition
  // must reproduce the exact running count at every step.
  Rng rng(1);
  BinaryCounter counter(1e9, /*horizon=*/256);
  int64_t exact = 0;
  for (int64_t t = 1; t <= 256; ++t) {
    int64_t bit = (t % 3 == 0) ? 1 : 0;
    exact += bit;
    double released = counter.Step(bit, &rng);
    EXPECT_NEAR(released, static_cast<double>(exact), 1e-3) << "t=" << t;
  }
  EXPECT_EQ(counter.true_count(), exact);
}

TEST(BinaryCounterTest, TracksCountWithinPolylogError) {
  Rng rng(2);
  const double eps = 1.0;
  const int64_t horizon = 4096;
  BinaryCounter counter(eps, horizon);
  RunningStat abs_err;
  int64_t exact = 0;
  for (int64_t t = 1; t <= horizon; ++t) {
    int64_t bit = (t % 2 == 0) ? 1 : 0;
    exact += bit;
    double released = counter.Step(bit, &rng);
    abs_err.Add(std::fabs(released - static_cast<double>(exact)));
  }
  // Error per release ~ sqrt(#blocks) * levels/eps <= log^{1.5}(T)/eps.
  double levels = static_cast<double>(counter.levels());
  double bound = levels * std::sqrt(levels) / eps;
  EXPECT_LT(abs_err.mean(), bound);
  EXPECT_GT(abs_err.mean(), 0.1);  // noise genuinely present
}

TEST(BinaryCounterTest, LevelsMatchHorizon) {
  Rng rng(3);
  EXPECT_EQ(BinaryCounter(1.0, 1).levels(), 1);
  EXPECT_EQ(BinaryCounter(1.0, 2).levels(), 2);
  EXPECT_EQ(BinaryCounter(1.0, 1024).levels(), 11);
  EXPECT_DOUBLE_EQ(BinaryCounter(2.0, 1024).node_scale(), 11.0 / 2.0);
}

TEST(BinaryCounterTest, ErrorGrowsOnlyPolylogInHorizon) {
  // Mean |error| at T=4096 should be far below linear-in-T, and only a
  // small factor above the error at T=256.
  auto mean_err = [](int64_t horizon, uint64_t seed) {
    Rng rng(seed);
    BinaryCounter counter(0.5, horizon);
    RunningStat err;
    int64_t exact = 0;
    for (int64_t t = 1; t <= horizon; ++t) {
      exact += 1;
      err.Add(std::fabs(counter.Step(1, &rng) - static_cast<double>(exact)));
    }
    return err.mean();
  };
  double small = mean_err(256, 5);
  double large = mean_err(4096, 6);
  EXPECT_LT(large, small * 6.0);  // polylog growth, not 16x linear
}

// Transcript-level empirical DP: neighboring bit streams (one flipped bit)
// must induce bounded likelihood ratios on the rounded final release.
class BinaryCounterDpTest : public ::testing::TestWithParam<double> {};

TEST_P(BinaryCounterDpTest, FinalReleaseLikelihoodRatioBounded) {
  const double eps = GetParam();
  const int64_t horizon = 32;
  std::vector<int64_t> stream_a(horizon, 0), stream_b(horizon, 0);
  for (int64_t t = 0; t < horizon; t += 3) stream_a[static_cast<size_t>(t)] = 1;
  stream_b = stream_a;
  stream_b[13] = 1 - stream_b[13];  // neighboring: one event flipped

  Rng rng(7);
  const int n = 60000;
  auto histogram = [&](const std::vector<int64_t>& stream) {
    std::map<int64_t, int> hist;
    for (int i = 0; i < n; ++i) {
      BinaryCounter counter(eps, horizon);
      double last = 0;
      for (int64_t bit : stream) last = counter.Step(bit, &rng);
      hist[static_cast<int64_t>(std::llround(last))]++;
    }
    return hist;
  };
  auto ha = histogram(stream_a);
  auto hb = histogram(stream_b);
  for (const auto& [bucket, ca] : ha) {
    auto it = hb.find(bucket);
    if (it == hb.end()) continue;
    if (ca < 800 || it->second < 800) continue;
    double ratio = static_cast<double>(ca) / it->second;
    EXPECT_LE(ratio, std::exp(eps) * 1.3) << "bucket " << bucket;
    EXPECT_GE(ratio, std::exp(-eps) / 1.3) << "bucket " << bucket;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, BinaryCounterDpTest,
                         ::testing::Values(0.5, 1.0));

}  // namespace
}  // namespace dpsync::dp
