// Appendix-A security-model tests: the Real/Ideal simulation paradigm
// (Definition 12 / Theorem 14). A PPT simulator given ONLY the update
// leakage L_U = UpdtPatt(Sigma, D) must produce a server view
// indistinguishable from the real protocol's. We implement that simulator
// and check the views agree in every server-observable respect: batch
// schedule, batch sizes, ciphertext lengths, and byte-level statistics —
// while carrying none of the owner's data.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/stats.h"
#include "core/engine.h"
#include "core/dp_timer.h"
#include "core/strategy_factory.h"
#include "crypto/key_manager.h"
#include "crypto/record_cipher.h"
#include "workload/taxi_generator.h"
#include "workload/trip_record.h"

namespace dpsync {
namespace {

/// The server's view of the outsourcing protocol: one entry per
/// Setup/Update invocation, carrying the raw ciphertext batch.
struct ServerView {
  std::vector<std::vector<Bytes>> batches;

  int64_t total_records() const {
    int64_t n = 0;
    for (const auto& b : batches) n += static_cast<int64_t>(b.size());
    return n;
  }
};

/// A backend that records exactly what a semi-honest server receives.
class ViewRecordingBackend : public SogdbBackend {
 public:
  explicit ViewRecordingBackend(uint64_t key_seed)
      : cipher_(crypto::KeyManager::FromSeed(key_seed).DeriveKey("t")) {}

  Status Setup(const std::vector<Record>& g) override { return Receive(g); }
  Status Update(const std::vector<Record>& g) override { return Receive(g); }
  int64_t outsourced_count() const override { return view_.total_records(); }

  const ServerView& view() const { return view_; }

 private:
  Status Receive(const std::vector<Record>& batch) {
    std::vector<Bytes> cts;
    cts.reserve(batch.size());
    for (const Record& r : batch) {
      auto ct = cipher_.Encrypt(r.payload);
      if (!ct.ok()) return ct.status();
      cts.push_back(std::move(ct.value()));
    }
    view_.batches.push_back(std::move(cts));
    return Status::Ok();
  }

  crypto::RecordCipher cipher_;
  ServerView view_;
};

/// The Definition-12 simulator: reconstructs a server view from the
/// update-pattern leakage alone (fresh key, dummy payloads).
ServerView SimulateView(const UpdatePattern& leakage, uint64_t sim_seed) {
  crypto::RecordCipher cipher(
      crypto::KeyManager::FromSeed(sim_seed).DeriveKey("sim"));
  auto dummies = workload::MakeTripDummyFactory(sim_seed ^ 0x1234);
  ServerView view;
  for (const auto& event : leakage.events()) {
    std::vector<Bytes> batch;
    batch.reserve(static_cast<size_t>(event.volume));
    for (int64_t i = 0; i < event.volume; ++i) {
      Record dummy = dummies();
      auto ct = cipher.Encrypt(dummy.payload);
      EXPECT_TRUE(ct.ok());
      batch.push_back(std::move(ct.value()));
    }
    view.batches.push_back(std::move(batch));
  }
  return view;
}

/// Runs the real protocol and returns (server view, leakage).
std::pair<ServerView, UpdatePattern> RunReal(uint64_t seed,
                                             int64_t arrival_every) {
  ViewRecordingBackend backend(seed * 3 + 1);
  DpTimerConfig cfg;  // eps=0.5, T=30, flush defaults
  cfg.flush_interval = 500;
  cfg.flush_size = 10;
  DpSyncEngine engine(std::make_unique<DpTimerStrategy>(cfg), &backend,
                      workload::MakeTripDummyFactory(seed ^ 0xaa), seed);
  EXPECT_TRUE(engine.Setup({}).ok());
  for (int64_t t = 1; t <= 2000; ++t) {
    std::optional<Record> arrival;
    if (t % arrival_every == 0) {
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = t % 265 + 1;
      arrival = trip.ToRecord();
    }
    EXPECT_TRUE(engine.Tick(std::move(arrival)).ok());
  }
  return {backend.view(), engine.update_pattern()};
}

/// Mean byte value over the *sealed* portion of every ciphertext (the
/// 12-byte nonce prefix is a public counter and excluded).
double MeanSealedByte(const ServerView& view) {
  RunningStat s;
  for (const auto& batch : view.batches) {
    for (const auto& ct : batch) {
      for (size_t i = 12; i < ct.size(); ++i) {
        s.Add(static_cast<double>(ct[i]));
      }
    }
  }
  return s.mean();
}

TEST(SimulationSecurityTest, SimulatedViewMatchesRealStructure) {
  auto [real, leakage] = RunReal(11, 3);
  ServerView ideal = SimulateView(leakage, 999);

  // Identical schedule: same number of batches, same per-batch volumes.
  ASSERT_EQ(ideal.batches.size(), real.batches.size());
  for (size_t i = 0; i < real.batches.size(); ++i) {
    EXPECT_EQ(ideal.batches[i].size(), real.batches[i].size()) << "batch " << i;
  }
  // Identical ciphertext geometry: every record is one fixed-size blob.
  for (const auto& batch : ideal.batches) {
    for (const auto& ct : batch) {
      EXPECT_EQ(ct.size(), crypto::RecordCipher::kCiphertextSize);
    }
  }
}

TEST(SimulationSecurityTest, ViewsStatisticallyIndistinguishable) {
  auto [real, leakage] = RunReal(13, 2);
  ServerView ideal = SimulateView(leakage, 777);
  // Sealed bytes are keystream-masked: both views' distributions must
  // center on 127.5 with tight tolerance given ~1e5+ bytes, and must agree
  // with each other.
  EXPECT_NEAR(MeanSealedByte(real), 127.5, 1.5);
  EXPECT_NEAR(MeanSealedByte(ideal), 127.5, 1.5);
  EXPECT_NEAR(MeanSealedByte(real), MeanSealedByte(ideal), 1.5);
  // No ciphertext collisions inside or across views (fresh nonces/keys).
  std::set<Bytes> seen;
  for (const auto& batch : real.batches) {
    for (const auto& ct : batch) EXPECT_TRUE(seen.insert(ct).second);
  }
  for (const auto& batch : ideal.batches) {
    for (const auto& ct : batch) EXPECT_TRUE(seen.insert(ct).second);
  }
}

TEST(SimulationSecurityTest, ViewIndependentOfRecordContents) {
  // Two owners with the SAME arrival schedule but totally different record
  // contents must induce identically-shaped server views (the view depends
  // on the pattern only — the formal content of Theorem 14).
  ViewRecordingBackend backend_a(1), backend_b(2);
  DpTimerConfig cfg;
  cfg.flush_interval = 0;
  auto run = [&](ViewRecordingBackend* backend, int64_t zone,
                 double fare) {
    DpSyncEngine engine(std::make_unique<DpTimerStrategy>(cfg), backend,
                        workload::MakeTripDummyFactory(3),
                        /*seed=*/42);  // same DP noise seed => same pattern
    EXPECT_TRUE(engine.Setup({}).ok());
    for (int64_t t = 1; t <= 600; ++t) {
      std::optional<Record> arrival;
      if (t % 4 == 0) {
        workload::TripRecord trip;
        trip.pick_time = t;
        trip.pickup_id = zone;
        trip.fare = fare;
        arrival = trip.ToRecord();
      }
      EXPECT_TRUE(engine.Tick(std::move(arrival)).ok());
    }
  };
  run(&backend_a, /*zone=*/1, /*fare=*/3.0);
  run(&backend_b, /*zone=*/265, /*fare=*/99.0);

  const auto& va = backend_a.view();
  const auto& vb = backend_b.view();
  ASSERT_EQ(va.batches.size(), vb.batches.size());
  for (size_t i = 0; i < va.batches.size(); ++i) {
    ASSERT_EQ(va.batches[i].size(), vb.batches[i].size());
    for (size_t j = 0; j < va.batches[i].size(); ++j) {
      EXPECT_EQ(va.batches[i][j].size(), vb.batches[i][j].size());
      EXPECT_NE(va.batches[i][j], vb.batches[i][j]);  // contents do differ
    }
  }
}

}  // namespace
}  // namespace dpsync
