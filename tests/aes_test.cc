// Known-answer tests for AES-128 (FIPS-197) and AES-128-GCM (NIST GCM
// spec test cases), plus round-trip and tamper properties.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/aes_gcm.h"
#include "test_util.h"

namespace dpsync::crypto {
namespace {

using testutil::Hex;

TEST(Aes128Test, Fips197AppendixB) {
  Aes128 aes(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes pt = Hex("3243f6a8885a308d313198a2e0370734");
  uint8_t out[16];
  aes.EncryptBlock(pt.data(), out);
  EXPECT_EQ(ToHex(out, 16), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128Test, Fips197AppendixCVector) {
  Aes128 aes(Hex("000102030405060708090a0b0c0d0e0f"));
  Bytes pt = Hex("00112233445566778899aabbccddeeff");
  uint8_t out[16];
  aes.EncryptBlock(pt.data(), out);
  EXPECT_EQ(ToHex(out, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128Test, InPlaceEncryption) {
  Aes128 aes(Hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes block = Hex("3243f6a8885a308d313198a2e0370734");
  aes.EncryptBlock(block.data(), block.data());
  EXPECT_EQ(ToHex(block), "3925841d02dc09fbdc118597196a0b32");
}

// NIST GCM spec, Test Case 1: empty plaintext, empty AAD, zero key/IV.
TEST(AesGcmTest, NistCase1EmptyEverything) {
  Aes128Gcm gcm(Bytes(16, 0));
  Bytes nonce(12, 0);
  Bytes sealed = gcm.Seal(nonce, {}, {});
  ASSERT_EQ(sealed.size(), 16u);  // tag only
  EXPECT_EQ(ToHex(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

// NIST GCM spec, Test Case 2: one zero block.
TEST(AesGcmTest, NistCase2SingleZeroBlock) {
  Aes128Gcm gcm(Bytes(16, 0));
  Bytes nonce(12, 0);
  Bytes sealed = gcm.Seal(nonce, {}, Bytes(16, 0));
  ASSERT_EQ(sealed.size(), 32u);
  EXPECT_EQ(ToHex(Bytes(sealed.begin(), sealed.begin() + 16)),
            "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(ToHex(Bytes(sealed.begin() + 16, sealed.end())),
            "ab6e47d42cec13bdf53a67b21257bddf");
}

// NIST GCM spec, Test Case 3: 4-block plaintext, no AAD.
TEST(AesGcmTest, NistCase3FourBlocks) {
  Aes128Gcm gcm(Hex("feffe9928665731c6d6a8f9467308308"));
  Bytes nonce = Hex("cafebabefacedbaddecaf888");
  Bytes pt = Hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  Bytes sealed = gcm.Seal(nonce, {}, pt);
  EXPECT_EQ(ToHex(Bytes(sealed.begin(), sealed.end() - 16)),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985");
  EXPECT_EQ(ToHex(Bytes(sealed.end() - 16, sealed.end())),
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

// NIST GCM spec, Test Case 4: truncated plaintext with AAD.
TEST(AesGcmTest, NistCase4WithAad) {
  Aes128Gcm gcm(Hex("feffe9928665731c6d6a8f9467308308"));
  Bytes nonce = Hex("cafebabefacedbaddecaf888");
  Bytes pt = Hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  Bytes aad = Hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  Bytes sealed = gcm.Seal(nonce, aad, pt);
  EXPECT_EQ(ToHex(Bytes(sealed.end() - 16, sealed.end())),
            "5bc94fbc3221a5db94fae95ae7121a47");
  auto opened = gcm.Open(nonce, aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), pt);
}

TEST(AesGcmTest, TamperDetected) {
  Aes128Gcm gcm(Bytes(16, 7));
  Bytes nonce(12, 1);
  Bytes sealed = gcm.Seal(nonce, {}, ToBytes("payload"));
  sealed[0] ^= 1;
  EXPECT_FALSE(gcm.Open(nonce, {}, sealed).ok());
}

TEST(AesGcmTest, WrongAadRejected) {
  Aes128Gcm gcm(Bytes(16, 7));
  Bytes nonce(12, 1);
  Bytes sealed = gcm.Seal(nonce, ToBytes("a"), ToBytes("payload"));
  EXPECT_FALSE(gcm.Open(nonce, ToBytes("b"), sealed).ok());
}

TEST(AesGcmTest, ShortInputRejected) {
  Aes128Gcm gcm(Bytes(16, 7));
  EXPECT_FALSE(gcm.Open(Bytes(12, 1), {}, Bytes(8, 0)).ok());
}

class AesGcmRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AesGcmRoundTripTest, VariousLengths) {
  Aes128Gcm gcm(Bytes(16, 0x42));
  Bytes nonce(12, 0);
  nonce[0] = static_cast<uint8_t>(GetParam());
  Bytes pt(GetParam(), 0x3c);
  auto opened = gcm.Open(nonce, {}, gcm.Seal(nonce, {}, pt));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AesGcmRoundTripTest,
                         ::testing::Values(0, 1, 15, 16, 17, 64, 100, 255));

}  // namespace
}  // namespace dpsync::crypto
