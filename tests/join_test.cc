// Join execution across the lock modes (docs/CONCURRENCY.md,
// docs/ARCHITECTURE.md): tri-parity of answers and deterministic metrics
// between the locked, snapshot-serial and snapshot-parallel paths;
// nested-loop vs partitioned-hash identity; NULL and cross-type join
// keys; the poisoned-column scalar fallback; two-snapshot visibility
// (uncommitted tails, racing appends, epoch advance mid-batch); and
// A⋈B vs B⋈A deadlock-freedom. The racing cases are the ones the CI
// TSan job leans on: snapshot joins read two pinned prefixes lock-free
// while the owner keeps appending.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "edb/crypte_engine.h"
#include "edb/oblidb_engine.h"
#include "query/schema.h"
#include "query/value.h"
#include "test_util.h"
#include "workload/trip_record.h"

namespace dpsync::edb {
namespace {

using query::Value;
using testutil::Trip;
using workload::TripSchema;

/// Schema-valid record with payload = the serialized row (the stores
/// decode payloads with DeserializeRow and never re-validate against the
/// schema, which is exactly how NULL or wrong-typed cells reach a table).
Record RowRecord(query::Row row, bool dummy = false) {
  Record rec;
  rec.payload = query::SerializeRow(row);
  rec.is_dummy = dummy;
  return rec;
}

/// Trip-schema row with an arbitrary pickTime value (NULL, double, ...).
query::Row TripRowWithKey(Value key, int64_t zone) {
  return query::Row{std::move(key), Value(zone), Value(zone),
                    Value(1.0),     Value(5.0),  Value(int64_t{0})};
}

struct JoinRun {
  query::QueryResult result;
  double virtual_seconds = 0;
  int64_t records_scanned = 0;
  int64_t join_pairs = 0;
  int64_t snapshot_joins = 0;
};

/// One server, two trip tables, one join execution. `limit` overrides
/// oblivious_join_limit (0 forces the hash path for any size).
JoinRun RunTripJoin(const std::string& sql, const std::vector<Record>& left,
                    const std::vector<Record>& right, bool snapshot,
                    bool parallel, int64_t limit) {
  ObliDbConfig cfg;
  cfg.snapshot_scans = snapshot;
  cfg.parallel_joins = parallel;
  cfg.oblivious_join_limit = limit;
  ObliDbServer server(cfg);
  auto yt = server.CreateTable("YellowCab", TripSchema());
  EXPECT_TRUE(yt.ok());
  EXPECT_OK(yt.value()->Setup(left));
  auto gt = server.CreateTable("GreenTaxi", TripSchema());
  EXPECT_TRUE(gt.ok());
  EXPECT_OK(gt.value()->Setup(right));

  auto session = server.CreateSession();
  auto q = session->Prepare(sql);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto r = session->Execute(q.value());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  JoinRun run;
  run.result = r->result;
  run.virtual_seconds = r->stats.virtual_seconds;
  run.records_scanned = r->stats.records_scanned;
  run.join_pairs = r->stats.join_pairs;
  run.snapshot_joins = server.stats().snapshot_joins;
  return run;
}

/// Exact result equality — the modes share one chunk decomposition and
/// merge order, so even the FP sums must be bit-equal.
void ExpectSameRun(const JoinRun& a, const JoinRun& b, const char* what) {
  EXPECT_EQ(a.result.grouped, b.result.grouped) << what;
  EXPECT_EQ(a.result.scalar, b.result.scalar) << what;
  EXPECT_EQ(a.result.groups, b.result.groups) << what;
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds) << what;
  EXPECT_EQ(a.records_scanned, b.records_scanned) << what;
  EXPECT_EQ(a.join_pairs, b.join_pairs) << what;
}

/// Probe/build tables with duplicated keys, dummies and varied numeric
/// attributes — every code path (chains, dummy filter, WHERE, groups).
std::vector<Record> ProbeRows(int64_t n) {
  std::vector<Record> rows;
  for (int64_t i = 0; i < n; ++i) {
    workload::TripRecord t;
    t.pick_time = i % 37;
    t.pickup_id = 1 + i % 11;
    t.dropoff_id = 1 + i % 7;
    t.trip_distance = 0.5 + 0.25 * static_cast<double>(i % 20);
    t.fare = 2.5 + t.trip_distance * 2.5;
    rows.push_back(t.ToRecord());
    if (i % 13 == 0) rows.push_back(Trip(i % 37, 3, /*dummy=*/true));
  }
  return rows;
}

std::vector<Record> BuildRows(int64_t n) {
  std::vector<Record> rows;
  for (int64_t i = 0; i < n; ++i) {
    workload::TripRecord t;
    t.pick_time = i % 41;
    t.pickup_id = 1 + i % 5;
    t.dropoff_id = 1 + i % 3;
    t.trip_distance = 1.0 + 0.5 * static_cast<double>(i % 6);
    t.fare = 4.0 + t.trip_distance;
    rows.push_back(t.ToRecord());
    if (i % 17 == 0) rows.push_back(Trip(i % 41, 2, /*dummy=*/true));
  }
  return rows;
}

const char* kCountSql =
    "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
    "YellowCab.pickTime = GreenTaxi.pickTime";
const char* kSumSql =
    "SELECT SUM(YellowCab.fare) FROM YellowCab INNER JOIN GreenTaxi ON "
    "YellowCab.pickTime = GreenTaxi.pickTime WHERE YellowCab.tripDistance "
    ">= 3";
const char* kGroupSql =
    "SELECT GreenTaxi.pickupID, COUNT(*) AS c FROM YellowCab INNER JOIN "
    "GreenTaxi ON YellowCab.pickTime = GreenTaxi.pickTime GROUP BY "
    "GreenTaxi.pickupID";

// ------------------------------------------------------------ tri-parity

TEST(JoinParityTest, TriParityAcrossLockModes) {
  const auto left = ProbeRows(400);
  const auto right = BuildRows(300);
  for (const char* sql : {kCountSql, kSumSql, kGroupSql}) {
    // limit 0 forces the partitioned hash path in every mode.
    JoinRun locked = RunTripJoin(sql, left, right, false, false, 0);
    JoinRun snap_serial = RunTripJoin(sql, left, right, true, false, 0);
    JoinRun snap_parallel = RunTripJoin(sql, left, right, true, true, 0);
    ExpectSameRun(locked, snap_serial, sql);
    ExpectSameRun(locked, snap_parallel, sql);
    // The counter is the mode's signature: 0 on the exclusive path, one
    // per execution on the lock-free path.
    EXPECT_EQ(locked.snapshot_joins, 0);
    EXPECT_EQ(snap_serial.snapshot_joins, 1);
    EXPECT_EQ(snap_parallel.snapshot_joins, 1);
  }
}

TEST(JoinParityTest, NestedLoopAndHashAgree) {
  // COUNT under the pair limit runs the real oblivious nested loop; with
  // the limit forced to 0 the same query takes the partitioned hash path.
  // Both must produce the same answer AND the same virtual cost (the QET
  // model is shape-dependent, never strategy-dependent).
  const auto left = ProbeRows(120);
  const auto right = BuildRows(90);
  JoinRun nested =
      RunTripJoin(kCountSql, left, right, true, false, 4'000'000);
  JoinRun hash = RunTripJoin(kCountSql, left, right, true, true, 0);
  ExpectSameRun(nested, hash, "nested-loop vs hash");

  // Cross-check against a brute-force count over the logical rows
  // (dummies excluded — Appendix-B rewriting filters them).
  auto keys = [](const std::vector<Record>& recs) {
    std::vector<int64_t> keys;
    for (const auto& r : recs) {
      auto trip = workload::TripRecord::FromRecord(r);
      EXPECT_TRUE(trip.ok());
      if (!trip->is_dummy) keys.push_back(trip->pick_time);
    }
    return keys;
  };
  int64_t expected = 0;
  for (int64_t a : keys(left)) {
    for (int64_t b : keys(right)) expected += (a == b) ? 1 : 0;
  }
  EXPECT_EQ(nested.result.scalar, static_cast<double>(expected));
}

TEST(JoinParityTest, ParallelKnobBitIdenticalAboveScanThreshold) {
  // Big enough to cross the parallel-extraction and parallel-probe
  // thresholds (8192 rows): the FP sums and grouped maps must still be
  // bit-equal, because the parallel path replays the serial chunk
  // decomposition and merges partials in chunk order.
  const auto left = ProbeRows(9000);
  const auto right = BuildRows(200);
  for (const char* sql : {kSumSql, kGroupSql}) {
    JoinRun serial = RunTripJoin(sql, left, right, true, false, 0);
    JoinRun parallel = RunTripJoin(sql, left, right, true, true, 0);
    ExpectSameRun(serial, parallel, sql);
  }
}

TEST(JoinParityTest, SelfJoinPinsOneSnapshot) {
  // A self-join captures ONE snapshot under a single lock (scoped_lock
  // would deadlock on the same mutex twice) and joins it with itself.
  const auto rows = ProbeRows(80);
  const char* sql =
      "SELECT COUNT(*) FROM YellowCab INNER JOIN YellowCab ON "
      "YellowCab.pickTime = YellowCab.pickTime";
  ObliDbConfig cfg;
  ObliDbServer server(cfg);
  auto t = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_OK(t.value()->Setup(rows));
  auto session = server.CreateSession();
  auto q = session->Prepare(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::map<int64_t, int64_t> per_key;
  for (const auto& rec : rows) {
    auto trip = workload::TripRecord::FromRecord(rec);
    ASSERT_TRUE(trip.ok());
    if (!trip->is_dummy) ++per_key[trip->pick_time];
  }
  int64_t expected = 0;
  for (const auto& [_, c] : per_key) expected += c * c;
  EXPECT_EQ(r->result.scalar, static_cast<double>(expected));
  EXPECT_EQ(server.stats().snapshot_joins, 1);
}

// ------------------------------------------------------------- join keys

TEST(JoinKeyTest, NullKeysNeverMatch) {
  // SQL semantics: NULL = NULL is not a match. Both the nested loop and
  // the hash extraction drop NULL keys before pairing.
  std::vector<Record> left = {
      RowRecord(TripRowWithKey(Value(int64_t{1}), 1)),
      RowRecord(TripRowWithKey(Value(), 2)),
      RowRecord(TripRowWithKey(Value(int64_t{2}), 3)),
  };
  std::vector<Record> right = {
      RowRecord(TripRowWithKey(Value(), 4)),
      RowRecord(TripRowWithKey(Value(int64_t{1}), 5)),
  };
  JoinRun nested = RunTripJoin(kCountSql, left, right, true, false,
                               4'000'000);
  JoinRun hash = RunTripJoin(kCountSql, left, right, true, true, 0);
  EXPECT_EQ(nested.result.scalar, 1.0);  // only the 1–1 pair
  ExpectSameRun(nested, hash, "NULL keys");
}

TEST(JoinKeyTest, CrossTypeNumericKeysMatch) {
  // An int key column joined against a double key column: the typed fast
  // path cannot apply (declared types differ), and the scalar fallback
  // must honor Value's numeric trichotomy — 2 == 2.0.
  query::Schema lschema({{"k", query::ValueType::kInt},
                         {query::Schema::kDummyColumn,
                          query::ValueType::kInt}});
  query::Schema rschema({{"k", query::ValueType::kDouble},
                         {query::Schema::kDummyColumn,
                          query::ValueType::kInt}});
  auto lrow = [](int64_t k) {
    return RowRecord(query::Row{Value(k), Value(int64_t{0})});
  };
  auto rrow = [](double k) {
    return RowRecord(query::Row{Value(k), Value(int64_t{0})});
  };
  ObliDbConfig cfg;
  cfg.oblivious_join_limit = 0;  // exercise the hash fallback, not the loop
  ObliDbServer server(cfg);
  auto lt = server.CreateTable("L", lschema);
  ASSERT_TRUE(lt.ok());
  ASSERT_OK(lt.value()->Setup({lrow(1), lrow(2), lrow(3)}));
  auto rt = server.CreateTable("R", rschema);
  ASSERT_TRUE(rt.ok());
  ASSERT_OK(rt.value()->Setup({rrow(2.0), rrow(2.5), rrow(3.0)}));

  auto session = server.CreateSession();
  auto q = session->Prepare(
      "SELECT COUNT(*) FROM L INNER JOIN R ON L.k = R.k");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->result.scalar, 2.0);  // 2==2.0 and 3==3.0; 2.5 unmatched
}

TEST(JoinKeyTest, PoisonedKeyColumnFallsBackBitIdentical) {
  // One probe row carries a double pickTime in the int-declared column:
  // the columnar mirror poisons that column, the typed int fast path is
  // ineligible, and the scalar fallback must still match 2.0 against the
  // build side's int 2 — with the same answer whether or not the probe
  // runs parallel.
  std::vector<Record> left = ProbeRows(60);
  left.push_back(RowRecord(TripRowWithKey(Value(2.0), 9)));
  const auto right = BuildRows(50);

  JoinRun serial = RunTripJoin(kCountSql, left, right, true, false, 0);
  JoinRun parallel = RunTripJoin(kCountSql, left, right, true, true, 0);
  ExpectSameRun(serial, parallel, "poisoned key column");

  // The nested loop (Value-based by construction) is the reference.
  JoinRun nested = RunTripJoin(kCountSql, left, right, true, false,
                               4'000'000);
  ExpectSameRun(nested, serial, "poisoned vs nested reference");

  // And the poisoned row really joins: key 2.0 matches int key 2.
  int64_t build_twos = 0;
  for (const auto& rec : right) {
    auto trip = workload::TripRecord::FromRecord(rec);
    ASSERT_TRUE(trip.ok());
    if (!trip->is_dummy && trip->pick_time == 2) ++build_twos;
  }
  ASSERT_GT(build_twos, 0);
  std::vector<Record> without = ProbeRows(60);
  JoinRun baseline = RunTripJoin(kCountSql, without, right, true, false, 0);
  EXPECT_EQ(serial.result.scalar,
            baseline.result.scalar + static_cast<double>(build_twos));
}

// ------------------------------------------------------------ visibility

TEST(JoinVisibilityTest, UncommittedTailInvisibleToSnapshotJoins) {
  // Manual commit points: Setup appends without flushing, so nothing is
  // committed. The locked join (EnclaveScan) sees the full tail; the
  // snapshot join pins the committed prefix — here, empty — and its
  // metrics price exactly what it saw.
  auto run = [](bool snapshot) {
    ObliDbConfig cfg;
    cfg.snapshot_scans = snapshot;
    cfg.storage.flush_every_update = false;
    ObliDbServer server(cfg);
    auto yt = server.CreateTable("YellowCab", TripSchema());
    EXPECT_TRUE(yt.ok());
    EXPECT_OK(yt.value()->Setup({Trip(1, 1), Trip(2, 2)}));
    auto gt = server.CreateTable("GreenTaxi", TripSchema());
    EXPECT_TRUE(gt.ok());
    EXPECT_OK(gt.value()->Setup({Trip(1, 3), Trip(1, 4)}));
    auto session = server.CreateSession();
    auto q = session->Prepare(kCountSql);
    EXPECT_TRUE(q.ok());
    auto r = session->Execute(q.value());
    EXPECT_TRUE(r.ok());
    return std::make_pair(r->result.scalar, r->stats.records_scanned);
  };
  auto [locked_count, locked_scanned] = run(false);
  EXPECT_EQ(locked_count, 2.0);  // both GreenTaxi rows match pickTime 1
  EXPECT_EQ(locked_scanned, 4);
  auto [snap_count, snap_scanned] = run(true);
  EXPECT_EQ(snap_count, 0.0);
  EXPECT_EQ(snap_scanned, 0);
}

TEST(JoinVisibilityTest, RacingAppendsYieldCommittedPrefixJoins) {
  // Owner appends matched batches of 3 to the build side (auto-flush =
  // one commit per batch) while analysts run the join: every answer must
  // be a committed prefix — count ≡ 1 (mod 3) given the 1-row start —
  // and monotone within one analyst (epochs only advance).
  ObliDbConfig cfg;
  cfg.admission.max_in_flight = 4;
  cfg.admission.max_queue = 4096;
  ObliDbServer server(cfg);
  auto yt = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(yt.ok());
  ASSERT_OK(yt.value()->Setup({Trip(0, 1)}));  // one probe row, key 0
  auto gt = server.CreateTable("GreenTaxi", TripSchema());
  ASSERT_TRUE(gt.ok());
  ASSERT_OK(gt.value()->Setup({Trip(0, 1)}));  // one committed match

  constexpr int kBatches = 40;
  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 0; b < kBatches; ++b) {
      if (!gt.value()->Update({Trip(0, 1), Trip(0, 2), Trip(0, 3)}).ok()) {
        ++failures;
      }
    }
  });
  std::vector<std::thread> analysts;
  for (int a = 0; a < 3; ++a) {
    analysts.emplace_back([&] {
      auto session = server.CreateSession();
      auto q = session->Prepare(kCountSql);
      if (!q.ok()) {
        ++failures;
        return;
      }
      double last = 0;
      for (int i = 0; i < 15; ++i) {
        auto r = session->Execute(q.value());
        if (!r.ok()) {
          ++failures;
          continue;
        }
        double count = r->result.scalar;
        if (static_cast<int64_t>(count - 1) % 3 != 0) ++failures;
        if (count < last) ++failures;
        last = count;
      }
    });
  }
  owner.join();
  for (auto& th : analysts) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(server.stats().snapshot_joins, 0);

  auto session = server.CreateSession();
  auto q = session->Prepare(kCountSql);
  ASSERT_TRUE(q.ok());
  auto r = session->Execute(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.scalar, 1.0 + 3.0 * kBatches);
}

TEST(JoinVisibilityTest, EpochAdvancesDuringExecuteMany) {
  // A whole batch of joins fans out while the owner races commits
  // forward: every response lands on some committed prefix, and the
  // fan-out runs through the lock-free join path (counter == batch size).
  ObliDbConfig cfg;
  cfg.admission.max_in_flight = 8;
  cfg.admission.max_queue = 4096;
  ObliDbServer server(cfg);
  auto yt = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(yt.ok());
  ASSERT_OK(yt.value()->Setup({Trip(0, 1)}));
  auto gt = server.CreateTable("GreenTaxi", TripSchema());
  ASSERT_TRUE(gt.ok());
  ASSERT_OK(gt.value()->Setup({Trip(0, 1)}));

  auto session = server.CreateSession();
  auto q = session->Prepare(kCountSql);
  ASSERT_TRUE(q.ok());
  std::vector<PreparedQuery> batch(16, q.value());

  std::atomic<int> failures{0};
  std::thread owner([&] {
    for (int b = 0; b < 30; ++b) {
      if (!gt.value()->Update({Trip(0, 1), Trip(0, 2), Trip(0, 3)}).ok()) {
        ++failures;
      }
    }
  });
  auto responses = session->ExecuteMany(batch);
  owner.join();
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), batch.size());
  for (const auto& resp : *responses) {
    EXPECT_EQ(static_cast<int64_t>(resp.result.scalar - 1) % 3, 0)
        << "count " << resp.result.scalar << " is not a committed prefix";
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().snapshot_joins,
            static_cast<int64_t>(batch.size()));
}

// ----------------------------------------------------- deadlock freedom

TEST(JoinConcurrencyTest, OppositeOrderJoinsDontDeadlock) {
  // A⋈B and B⋈A hammered from two threads while the owner appends to
  // both tables. Both the snapshot capture and the exclusive path acquire
  // the two table mutexes via scoped_lock, so neither mode can hang; the
  // suite TIMEOUT is the deadlock detector.
  for (bool snapshot : {true, false}) {
    ObliDbConfig cfg;
    cfg.snapshot_scans = snapshot;
    cfg.admission.max_in_flight = 4;
    cfg.admission.max_queue = 4096;
    ObliDbServer server(cfg);
    auto at = server.CreateTable("A", TripSchema());
    ASSERT_TRUE(at.ok());
    ASSERT_OK(at.value()->Setup({Trip(0, 1), Trip(1, 2)}));
    auto bt = server.CreateTable("B", TripSchema());
    ASSERT_TRUE(bt.ok());
    ASSERT_OK(bt.value()->Setup({Trip(0, 3), Trip(1, 4)}));

    std::atomic<int> failures{0};
    std::thread owner([&] {
      for (int i = 0; i < 25; ++i) {
        if (!at.value()->Update({Trip(i % 3, 1)}).ok()) ++failures;
        if (!bt.value()->Update({Trip(i % 3, 2)}).ok()) ++failures;
      }
    });
    std::vector<std::thread> analysts;
    for (const char* sql :
         {"SELECT COUNT(*) FROM A INNER JOIN B ON A.pickTime = B.pickTime",
          "SELECT COUNT(*) FROM B INNER JOIN A ON B.pickTime = "
          "A.pickTime"}) {
      analysts.emplace_back([&, sql] {
        auto session = server.CreateSession();
        auto q = session->Prepare(sql);
        if (!q.ok()) {
          ++failures;
          return;
        }
        for (int i = 0; i < 30; ++i) {
          if (!session->Execute(q.value()).ok()) ++failures;
        }
      });
    }
    owner.join();
    for (auto& th : analysts) th.join();
    EXPECT_EQ(failures.load(), 0) << "snapshot=" << snapshot;
  }
}

// --------------------------------------------------------- grouped joins

TEST(GroupedJoinTest, SingleKeyGroupedJoinMatchesBruteForce) {
  const auto left = ProbeRows(150);
  const auto right = BuildRows(110);
  JoinRun run = RunTripJoin(kGroupSql, left, right, true, true, 0);
  ASSERT_TRUE(run.result.grouped);

  // Brute force over the logical rows: group matched pairs by the build
  // side's pickupID (dummies excluded by the Appendix-B rewrite).
  std::vector<std::pair<int64_t, int64_t>> l, r;  // (key, pickupID)
  for (const auto& rec : left) {
    auto t = workload::TripRecord::FromRecord(rec);
    ASSERT_TRUE(t.ok());
    if (!t->is_dummy) l.emplace_back(t->pick_time, t->pickup_id);
  }
  for (const auto& rec : right) {
    auto t = workload::TripRecord::FromRecord(rec);
    ASSERT_TRUE(t.ok());
    if (!t->is_dummy) r.emplace_back(t->pick_time, t->pickup_id);
  }
  std::map<Value, double> expected;
  for (const auto& [lk, _] : l) {
    for (const auto& [rk, rg] : r) {
      if (lk == rk) expected[Value(rg)] += 1.0;
    }
  }
  EXPECT_EQ(run.result.groups, expected);

  // Group key on the probe side binds and answers too.
  const auto probe_grouped = RunTripJoin(
      "SELECT YellowCab.pickupID, COUNT(*) AS c FROM YellowCab INNER JOIN "
      "GreenTaxi ON YellowCab.pickTime = GreenTaxi.pickTime GROUP BY "
      "YellowCab.pickupID",
      left, right, true, true, 0);
  ASSERT_TRUE(probe_grouped.result.grouped);
  std::map<Value, double> expected_probe;
  for (const auto& [lk, lg] : l) {
    for (const auto& [rk, _] : r) {
      if (lk == rk) expected_probe[Value(lg)] += 1.0;
    }
  }
  EXPECT_EQ(probe_grouped.result.groups, expected_probe);
}

TEST(GroupedJoinTest, GroupKeyBindingErrors) {
  ObliDbServer server{ObliDbConfig{}};
  auto yt = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(yt.ok());
  ASSERT_OK(yt.value()->Setup({Trip(0, 1)}));
  auto gt = server.CreateTable("GreenTaxi", TripSchema());
  ASSERT_TRUE(gt.ok());
  ASSERT_OK(gt.value()->Setup({Trip(0, 1)}));
  auto session = server.CreateSession();

  // A join's group key evaluates against the joined (table-qualified)
  // schema: bare names do not bind there.
  auto bare = session->Prepare(
      "SELECT pickupID, COUNT(*) AS c FROM YellowCab INNER JOIN GreenTaxi "
      "ON YellowCab.pickTime = GreenTaxi.pickTime GROUP BY pickupID");
  ASSERT_FALSE(bare.ok());
  EXPECT_NE(bare.status().ToString().find("unknown GROUP BY column"),
            std::string::npos)
      << bare.status().ToString();

  // Multi-key grouping stays out of scope, with the same message scans
  // report.
  auto multi = session->Prepare(
      "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi ON "
      "YellowCab.pickTime = GreenTaxi.pickTime GROUP BY "
      "YellowCab.pickupID, GreenTaxi.pickupID");
  ASSERT_FALSE(multi.ok());
  EXPECT_NE(
      multi.status().ToString().find("GROUP BY supports a single column"),
      std::string::npos)
      << multi.status().ToString();
}

// ------------------------------------------------------------ crypt-eps

TEST(JoinRejectionTest, CryptEpsStillRejectsJoins) {
  // The paper's Crypt-eps has no join operator (§8, footnote 2); the
  // planner must keep rejecting joins with the legacy message, not route
  // them to the new hash path.
  CryptEpsConfig cfg;
  CryptEpsServer server(cfg);
  auto yt = server.CreateTable("YellowCab", TripSchema());
  ASSERT_TRUE(yt.ok());
  ASSERT_OK(yt.value()->Setup({Trip(0, 1)}));
  auto gt = server.CreateTable("GreenTaxi", TripSchema());
  ASSERT_TRUE(gt.ok());
  ASSERT_OK(gt.value()->Setup({Trip(0, 1)}));
  auto session = server.CreateSession();
  auto q = session->Prepare(kCountSql);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("does not support join operators"),
            std::string::npos)
      << q.status().ToString();
}

}  // namespace
}  // namespace dpsync::edb
