#!/usr/bin/env python3
"""Markdown hygiene gate: validate intra-repo references in all *.md.

Two kinds of reference are checked, in every tracked markdown file
outside build trees and third_party:

1. **Markdown links** `[text](target)` whose target is not an absolute
   URL or a pure fragment: the target path (resolved relative to the
   containing file, `#fragment` stripped) must exist.
2. **Code-path references**: inline-code or prose mentions of repo paths
   like `src/edb/snapshot.h`, `docs/CONCURRENCY.md`,
   `tools/bench_diff.py`, `tests/snapshot_test.cc`,
   `.github/workflows/ci.yml` — any token rooted at a known top-level
   code directory with a recognized extension must name an existing
   file. Tokens inside fenced code blocks are skipped (they quote code,
   which the compiler already checks — and example output may name
   paths that do not exist at rest).

Exit 0 when clean; exit 1 listing every broken reference. CI runs this
in the `docs` job so documentation cannot rot silently; run it locally
after moving or renaming files:

    python3 tools/check_docs.py [--root <repo>] [-v]
"""
import argparse
import os
import re
import sys

# Directories whose *.md participate in the check (recursively), plus
# the repo root itself (non-recursive).
DOC_DIRS = ["docs", "tools", "bench", "examples", "src", "tests",
            ".github", ".claude"]
SKIP_DIR_NAMES = {"third_party", "node_modules", ".git"}
SKIP_DIR_PREFIXES = ("build",)  # build/, build-asan/, build-tsan/, ...

# A code-path reference: rooted at a known top-level dir, ending in a
# recognized source/doc extension.
PATH_ROOTS = r"(?:src|docs|tests|bench|tools|examples|cmake|third_party|\.github)"
PATH_EXTS = r"(?:h|cc|cpp|py|md|json|ya?ml|cmake|txt|seg)"
CODE_PATH_RE = re.compile(
    r"(?<![\w/.-])(" + PATH_ROOTS + r"/[\w./-]*\.(?:" + PATH_EXTS + r"))\b")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def md_files(root):
    files = []

    def want_dir(name):
        return name not in SKIP_DIR_NAMES and not name.startswith(
            SKIP_DIR_PREFIXES)

    for entry in sorted(os.listdir(root)):
        full = os.path.join(root, entry)
        if os.path.isfile(full) and entry.endswith(".md"):
            files.append(full)
        elif os.path.isdir(full) and want_dir(entry) and entry in DOC_DIRS:
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = sorted(d for d in dirnames if want_dir(d))
                for f in sorted(filenames):
                    if f.endswith(".md"):
                        files.append(os.path.join(dirpath, f))
    return files


def strip_fenced_blocks(lines):
    """Yields (lineno, line) for lines outside ``` fences."""
    in_fence = False
    for i, line in enumerate(lines, start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield i, line


def check_file(path, root, verbose):
    errors = []
    checked = 0
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    here = os.path.dirname(path)
    rel = os.path.relpath(path, root)

    for lineno, line in strip_fenced_blocks(lines):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            if target.startswith("#"):  # same-file fragment
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            checked += 1
            resolved = (os.path.join(root, file_part.lstrip("/"))
                        if target.startswith("/")
                        else os.path.join(here, file_part))
            if not os.path.exists(resolved):
                errors.append(f"{rel}:{lineno}: broken link ({target})")
        for m in CODE_PATH_RE.finditer(line):
            ref = m.group(1)
            checked += 1
            if not os.path.exists(os.path.join(root, ref)):
                errors.append(f"{rel}:{lineno}: dangling code path ({ref})")
    if verbose:
        print(f"  {rel}: {checked} references")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="list per-file reference counts")
    args = parser.parse_args()
    root = os.path.abspath(args.root or
                           os.path.join(os.path.dirname(__file__), os.pardir))

    files = md_files(root)
    if not files:
        print(f"check_docs: no markdown files under {root}", file=sys.stderr)
        return 1
    all_errors = []
    for path in files:
        all_errors.extend(check_file(path, root, args.verbose))
    if all_errors:
        print(f"check_docs: {len(all_errors)} broken reference(s) in "
              f"{len(files)} markdown files:")
        for e in all_errors:
            print(f"  {e}")
        return 1
    print(f"check_docs: OK ({len(files)} markdown files, all intra-repo "
          f"links and code paths resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
