#!/usr/bin/env python3
"""Compare two BENCH_<name>.json reports (see bench/bench_util.h).

Experiments are matched by their configuration key (engine, strategy,
epsilon, backend, shard count, storage method); for each matched pair the
deterministic metrics are compared exactly and the timing/health metrics
with a relative tolerance. Intended for the warn-only CI step that diffs a
commit's bench artifacts against the previous run:

    python3 tools/bench_diff.py old/BENCH_fig2_end_to_end.json \
                                new/BENCH_fig2_end_to_end.json

Virtual-cost regressions are a failing gate: if a matched experiment's
`mean_qet` (per query) or `virtual_seconds` (custom entries, e.g. the
concurrency sweep) grows by more than --qet-regression-threshold (default
25%), the invocation exits 1 — unless the (bench, location, metric) is
covered by an --allowlist entry recording the intentional change. Other
deterministic mismatches stay warn-only unless --strict is given; timing
drift (wall clock) never fails.
"""
import argparse
import json
import sys

# Metrics that are a pure function of the experiment config (seeded RNG):
# any change means behavior changed, not the machine.
DETERMINISTIC = [
    "mean_logical_gap",
    # Distributed sweep (sweep_distributed): transport and replication
    # counters are pure functions of the workload and topology — the
    # mid-sweep kill happens at a fixed rep, so even failovers is exact
    # (failover_wall_seconds stays timing/warn-only).
    "rpc_calls",
    "bytes_shipped",
    "failovers",
    "replica_lag_batches",
    "bytes_replicated",
    "final_total_mb",
    "final_dummy_mb",
    "real_synced",
    "dummy_synced",
    "updates_posted",
    # Custom join-sweep entries (sweep_joins): these counters are pure
    # functions of the table sizes and the plan, identical across the
    # locked / snapshot-serial / snapshot-parallel modes — any change
    # means join execution changed what it reads, not how fast.
    "records_scanned",
    "join_pairs",
    "snapshot_joins",
    "iters",
]
DETERMINISTIC_QUERY = ["mean_l1", "max_l1", "mean_qet"]
# ORAM health: access counts are deterministic; the stash high-water mark
# depends only on the seeded leaf stream, so it is deterministic too.
DETERMINISTIC_ORAM = ["max_stash", "access_count"]
# Query-pipeline counters (the "plan_cache" sub-object): all are pure
# functions of the workload except peak_in_flight, which depends on
# scheduling. view_hits/view_folds flipping to 0 means the materialized
# view path silently stopped answering — exactly the regression this
# gate exists to catch.
DETERMINISTIC_PLAN_CACHE = [
    "prepares",
    "hits",
    "misses",
    "rebinds",
    "executed",
    "snapshot_scans",
    "snapshot_joins",
    "view_hits",
    "view_folds",
    # Distributed coordinator: scatters and gathered partials are a pure
    # function of the query count x server count; rpc_calls/bytes_shipped
    # (top-level, sweep_distributed) are deterministic for the same
    # reason — the wire format and batch routing are seeded functions of
    # the workload.
    "remote_scatters",
    "remote_partials",
]

# Wall-clock metrics: machine-dependent, warn only above the tolerance.
# qps / rows_per_sec (the concurrency and vectorized sweeps) are derived
# from wall clock, so they live here and never gate.
TIMING = ["wall_seconds", "qps", "rows_per_sec", "rpc_us_per_call"]
TIMING_QUERY = ["mean_qet_measured"]

# Virtual-cost metrics: deterministic model outputs whose *growth* beyond
# the regression threshold fails the run (cost regressions should never
# land silently). VIRTUAL_COST applies per experiment entry (custom
# benches), VIRTUAL_COST_QUERY per query of a sim experiment.
VIRTUAL_COST = ["virtual_seconds"]
VIRTUAL_COST_QUERY = ["mean_qet"]


class Allowlist:
    """JSON allowlist for intentional virtual-cost changes.

    Format: {"allow": [{"bench": "<name or *>", "where": "<substring or *>",
    "metric": "<name or *>", "reason": "..."}]}.
    """

    def __init__(self, path):
        self.entries = []
        if not path:
            return
        with open(path) as f:
            self.entries = json.load(f).get("allow", [])

    def covers(self, bench, where, metric):
        for e in self.entries:
            if e.get("bench", "*") not in ("*", bench):
                continue
            if e.get("metric", "*") not in ("*", metric):
                continue
            pattern = e.get("where", "*")
            if pattern == "*" or pattern in where:
                return True
        return False


def experiment_key(e):
    return (
        e.get("engine"),
        e.get("strategy"),
        e.get("epsilon"),
        e.get("backend"),
        e.get("num_shards"),
        e.get("use_oram_index", False),
    )


def fmt_key(key):
    engine, strategy, eps, backend, shards, indexed = key
    method = "indexed" if indexed else "linear"
    return f"{engine}/{strategy}(eps={eps}) {backend} x{shards} {method}"


def load(path):
    with open(path) as f:
        report = json.load(f)
    out = {}
    for e in report.get("experiments", []):
        key = experiment_key(e)
        if key in out:
            # Same config swept twice (e.g. repeated baseline): suffix.
            i = 2
            while (*key, i) in out:
                i += 1
            key = (*key, i)
        out[key] = e
    return (report.get("bench", path), report.get("fast_mode"),
            report.get("vectorized"), out)


def rel_delta(old, new):
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new), 1e-12)
    return abs(new - old) / denom


class Diff:
    def __init__(self):
        self.warnings = []
        self.mismatches = []
        self.regressions = []
        self.allowed = []

    def check_regression(self, bench, where, name, old, new, threshold,
                         allowlist):
        if old is None or new is None or old <= 0:
            return
        if new <= old * (1.0 + threshold):
            return
        pct = 100.0 * (new - old) / old
        line = (f"{where}: {name} regressed {old:.6g} -> {new:.6g} "
                f"(+{pct:.1f}%, threshold {threshold:.0%})")
        if allowlist.covers(bench, where, name):
            self.allowed.append(line)
        else:
            self.regressions.append(line)

    def compare_scalar(self, where, name, old, new, deterministic, tol):
        if old is None or new is None:
            if old != new:
                self.warnings.append(f"{where}: {name} present only in one run")
            return
        if deterministic:
            if old != new:
                self.mismatches.append(
                    f"{where}: {name} changed {old} -> {new}")
        elif rel_delta(old, new) > tol:
            pct = 100.0 * rel_delta(old, new)
            self.warnings.append(
                f"{where}: {name} drifted {old:.6g} -> {new:.6g} "
                f"({pct:.1f}%)")


def compare(old_path, new_path, tol, regression_threshold, allowlist):
    _, old_fast, old_vec, old_runs = load(old_path)
    bench, new_fast, new_vec, new_runs = load(new_path)
    diff = Diff()
    if old_fast != new_fast:
        diff.warnings.append(
            f"fast_mode differs ({old_fast} vs {new_fast}): "
            "timing comparisons are meaningless")
    # The vectorized header flag landed after some archived baselines; a
    # missing flag (None) is an old report, not a mode change, so only
    # warn when both runs actually recorded their mode.
    if old_vec is not None and new_vec is not None and old_vec != new_vec:
        diff.warnings.append(
            f"vectorized mode differs ({old_vec} vs {new_vec}): wall-clock "
            "drift is expected; deterministic metrics must still match")

    for key in old_runs.keys() - new_runs.keys():
        diff.warnings.append(f"experiment dropped: {fmt_key(key[:6])}")
    for key in new_runs.keys() - old_runs.keys():
        diff.warnings.append(f"experiment added: {fmt_key(key[:6])}")

    for key in sorted(old_runs.keys() & new_runs.keys(), key=str):
        old, new = old_runs[key], new_runs[key]
        where = fmt_key(key[:6])
        for name in DETERMINISTIC:
            diff.compare_scalar(where, name, old.get(name), new.get(name),
                                True, tol)
        for name in TIMING:
            diff.compare_scalar(where, name, old.get(name), new.get(name),
                                False, tol)
        for name in VIRTUAL_COST:
            diff.check_regression(bench, where, name, old.get(name),
                                  new.get(name), regression_threshold,
                                  allowlist)
        def query_list(e):
            qs = e.get("queries", [])
            return qs if isinstance(qs, list) else []

        old_queries = {q["name"]: q for q in query_list(old)}
        new_queries = {q["name"]: q for q in query_list(new)}
        for qname in sorted(old_queries.keys() | new_queries.keys()):
            oq, nq = old_queries.get(qname), new_queries.get(qname)
            if oq is None or nq is None:
                diff.warnings.append(
                    f"{where}: query {qname} present only in one run")
                continue
            for name in DETERMINISTIC_QUERY:
                diff.compare_scalar(f"{where} {qname}", name, oq.get(name),
                                    nq.get(name), True, tol)
            for name in TIMING_QUERY:
                diff.compare_scalar(f"{where} {qname}", name, oq.get(name),
                                    nq.get(name), False, tol)
            for name in VIRTUAL_COST_QUERY:
                diff.check_regression(bench, f"{where} {qname}", name,
                                      oq.get(name), nq.get(name),
                                      regression_threshold, allowlist)
        old_pc, new_pc = old.get("plan_cache"), new.get("plan_cache")
        if (old_pc is None) != (new_pc is None):
            diff.warnings.append(
                f"{where}: plan_cache counters present only in one run")
        elif old_pc is not None:
            for name in DETERMINISTIC_PLAN_CACHE:
                diff.compare_scalar(f"{where} plan_cache", name,
                                    old_pc.get(name), new_pc.get(name),
                                    True, tol)
        old_oram, new_oram = old.get("oram"), new.get("oram")
        if (old_oram is None) != (new_oram is None):
            diff.warnings.append(f"{where}: oram health present only in one run")
        elif old_oram is not None:
            for name in DETERMINISTIC_ORAM:
                diff.compare_scalar(f"{where} oram", name,
                                    old_oram.get(name), new_oram.get(name),
                                    True, tol)
            if old_oram.get("shard_accesses") != new_oram.get("shard_accesses"):
                diff.mismatches.append(
                    f"{where} oram: shard_accesses changed "
                    f"{old_oram.get('shard_accesses')} -> "
                    f"{new_oram.get('shard_accesses')}")
    return bench, diff


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="previous BENCH_<name>.json")
    parser.add_argument("new", help="current BENCH_<name>.json")
    parser.add_argument("--timing-tolerance", type=float, default=0.25,
                        help="relative drift above which timing metrics warn "
                             "(default 0.25)")
    parser.add_argument("--qet-regression-threshold", type=float,
                        default=0.25,
                        help="relative growth of virtual-cost metrics "
                             "(mean_qet / virtual_seconds) above which the "
                             "run FAILS (default 0.25)")
    parser.add_argument("--allowlist", default=None,
                        help="JSON allowlist for intentional virtual-cost "
                             "changes (see tools/bench_allowlist.json)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any deterministic-metric mismatch")
    args = parser.parse_args()

    bench, diff = compare(args.old, args.new, args.timing_tolerance,
                          args.qet_regression_threshold,
                          Allowlist(args.allowlist))
    for line in diff.regressions:
        print(f"REGRESSION {bench}: {line}")
    for line in diff.allowed:
        print(f"ALLOWED {bench}: {line}")
    for line in diff.mismatches:
        print(f"MISMATCH {bench}: {line}")
    for line in diff.warnings:
        print(f"WARN {bench}: {line}")
    if not (diff.regressions or diff.allowed or diff.mismatches
            or diff.warnings):
        print(f"OK {bench}: no deterministic changes, no cost regressions, "
              f"timing within {args.timing_tolerance:.0%}")
    if diff.regressions:
        return 1
    if args.strict and diff.mismatches:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
