/// \file iot_sensor_backup.cpp
/// The paper's §1 motivating scenario: an IoT provider backs up sensor
/// events to a building-administered encrypted database. With the default
/// synchronize-upon-receipt policy, the admin (who sees only *when*
/// uploads happen) reconstructs a person's walk past three sensors. With
/// DP-Sync's DP-Timer policy the same attack collapses.
///
///   $ ./build/examples/iot_sensor_backup
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/engine.h"
#include "core/naive_strategies.h"
#include "core/dp_timer.h"
#include "edb/oblidb_engine.h"
#include "sim/adversary.h"
#include "workload/trip_record.h"

using namespace dpsync;

namespace {

/// One simulated morning: a person enters at 7:00 and trips sensors at
/// 7:00:00, 7:00:10, 7:00:20 (we use 1-second ticks for this example).
std::vector<bool> BuildSensorEvents(int64_t horizon) {
  std::vector<bool> events(static_cast<size_t>(horizon), false);
  events[3600] = true;  // 7:00:00 entrance sensor (t=0 is 6:00:00)
  events[3610] = true;  // 7:00:10 hallway sensor
  events[3620] = true;  // 7:00:20 floor-3 sensor
  return events;
}

Record SensorRecord(int64_t t) {
  workload::TripRecord r;  // reuse the trip schema as a generic event row
  r.pick_time = t;
  r.pickup_id = 3;  // sensor id
  return r.ToRecord();
}

struct RunResult {
  UpdatePattern pattern;
};

RunResult RunOwner(std::unique_ptr<SyncStrategy> strategy,
                   const std::vector<bool>& events, uint64_t seed) {
  edb::ObliDbServer server;
  auto table = server.CreateTable("Events", workload::TripSchema());
  DpSyncEngine owner(std::move(strategy), table.value(),
                     workload::MakeTripDummyFactory(seed), seed);
  if (!owner.Setup({}).ok()) std::abort();
  for (size_t t = 0; t < events.size(); ++t) {
    std::optional<Record> arrival;
    if (events[t]) arrival = SensorRecord(static_cast<int64_t>(t));
    if (!owner.Tick(std::move(arrival)).ok()) std::abort();
  }
  return {owner.update_pattern()};
}

void Report(const std::string& name, const UpdatePattern& pattern,
            const std::vector<bool>& events) {
  auto attack = sim::RunTimingAttack(pattern, events);
  std::cout << "\n--- " << name << " ---\n";
  std::cout << "uploads observed by building admin: "
            << pattern.num_updates() << "\n";
  // Show the first few upload times around the event window.
  std::cout << "upload times near 7:00 (t=3600..3660): ";
  int shown = 0;
  for (const auto& e : pattern.events()) {
    if (e.t >= 3590 && e.t <= 3670) {
      std::cout << e.t << "(x" << e.volume << ") ";
      if (++shown > 8) break;
    }
  }
  if (shown == 0) std::cout << "(none)";
  std::cout << "\nattack precision: " << std::fixed << std::setprecision(3)
            << attack.precision << "  recall: " << attack.recall << "\n";
}

}  // namespace

int main() {
  std::cout << "IoT building scenario (paper Section 1): 3 sensor events at "
               "7:00:00/7:00:10/7:00:20.\nThe admin sees only upload "
               "times and sizes, and tries to reconstruct the walk.\n";
  const int64_t horizon = 7200;  // 6:00-8:00, 1-second ticks
  auto events = BuildSensorEvents(horizon);

  // SUR: backup immediately on every event — the §1 attack succeeds.
  Report("SUR (backup on receipt)",
         RunOwner(std::make_unique<SurStrategy>(), events, 1).pattern, events);

  // DP-Timer: upload every T=60s with Lap(1/eps)-noised volumes.
  DpTimerConfig cfg;
  cfg.epsilon = 0.5;
  cfg.period = 60;
  cfg.flush_interval = 1800;
  cfg.flush_size = 5;
  Report("DP-Timer (eps=0.5, T=60)",
         RunOwner(std::make_unique<DpTimerStrategy>(cfg), events, 2).pattern,
         events);

  std::cout << "\nUnder SUR the admin recovers the exact 10-second walking "
               "pattern (precision=recall=1).\nUnder DP-Timer uploads land "
               "on the fixed 60s grid with noisy sizes - the event times\n"
               "are gone, and any single event is protected by eps=0.5 "
               "differential privacy.\n";
  return 0;
}
