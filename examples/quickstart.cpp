/// \file quickstart.cpp
/// Quickstart: outsource a small growing table through DP-Sync with the
/// DP-Timer strategy on top of the ObliDB-style encrypted database, query
/// it as the analyst, and inspect what the server actually observed.
///
///   $ ./build/examples/quickstart
#include <iostream>

#include "core/dp_timer.h"
#include "core/engine.h"
#include "edb/oblidb_engine.h"
#include "query/parser.h"
#include "workload/trip_record.h"

using namespace dpsync;

int main() {
  // --- 1. The server side: an encrypted database with L-0 leakage. ------
  edb::ObliDbServer server;
  auto table = server.CreateTable("YellowCab", workload::TripSchema());
  if (!table.ok()) {
    std::cerr << table.status().ToString() << "\n";
    return 1;
  }

  // --- 2. The owner side: DP-Sync with DP-Timer (eps=0.5, T=30). --------
  DpTimerConfig strategy_cfg;
  strategy_cfg.epsilon = 0.5;
  strategy_cfg.period = 30;
  strategy_cfg.flush_interval = 500;
  strategy_cfg.flush_size = 10;
  DpSyncEngine owner(std::make_unique<DpTimerStrategy>(strategy_cfg),
                     table.value(), workload::MakeTripDummyFactory(42),
                     /*seed=*/7);
  if (auto s = owner.Setup({}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // --- 3. Simulate 2 hours of sensor-style arrivals (1-minute ticks). ---
  Rng rng(1);
  int64_t received = 0;
  for (int64_t t = 1; t <= 1200; ++t) {
    std::optional<Record> arrival;
    if (rng.Bernoulli(0.4)) {  // a trip arrives this minute
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = rng.UniformInt(1, 265);
      trip.dropoff_id = rng.UniformInt(1, 265);
      trip.trip_distance = 1.0 + rng.UniformDouble() * 5;
      trip.fare = 2.5 + trip.trip_distance * 2.5;
      arrival = trip.ToRecord();
      ++received;
    }
    if (auto s = owner.Tick(std::move(arrival)); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }

  // --- 4. The analyst side: SQL over the outsourced table. --------------
  auto q = query::ParseSelect(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  auto response = server.Query(q.value());
  if (!response.ok()) {
    std::cerr << response.status().ToString() << "\n";
    return 1;
  }

  // --- 5. What happened. -------------------------------------------------
  std::cout << "records received by owner : " << received << "\n"
            << "records still in cache    : " << owner.logical_gap() << "\n"
            << "real records outsourced   : " << owner.counters().real_synced
            << "\n"
            << "dummy records outsourced  : " << owner.counters().dummy_synced
            << "\n"
            << "server-visible updates    : "
            << owner.update_pattern().num_updates() << " (every T=30 ticks "
            << "with noisy volumes + flushes)\n"
            << "query answer (range count): " << response->result.scalar
            << "\n"
            << "query touched records     : " << response->stats.records_scanned
            << " (all of them - oblivious scan)\n";
  std::cout << "\nThe server never saw *when* records arrived: only the "
               "noisy update pattern.\n";
  return 0;
}
