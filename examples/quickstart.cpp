/// \file quickstart.cpp
/// Quickstart: outsource a small growing table through DP-Sync with the
/// DP-Timer strategy on top of the ObliDB-style encrypted database, query
/// it as the analyst through the session API (prepare once, execute as
/// the database grows), and inspect what the server actually observed.
///
///   $ ./build/examples/quickstart
#include <iomanip>
#include <iostream>

#include "core/dp_timer.h"
#include "core/engine.h"
#include "edb/oblidb_engine.h"
#include "workload/trip_record.h"

using namespace dpsync;

int main() {
  // --- 1. The server side: an encrypted database with L-0 leakage. ------
  edb::ObliDbServer server;
  auto table = server.CreateTable("YellowCab", workload::TripSchema());
  if (!table.ok()) {
    std::cerr << table.status().ToString() << "\n";
    return 1;
  }

  // --- 2. The owner side: DP-Sync with DP-Timer (eps=0.5, T=30). --------
  DpTimerConfig strategy_cfg;
  strategy_cfg.epsilon = 0.5;
  strategy_cfg.period = 30;
  strategy_cfg.flush_interval = 500;
  strategy_cfg.flush_size = 10;
  DpSyncEngine owner(std::make_unique<DpTimerStrategy>(strategy_cfg),
                     table.value(), workload::MakeTripDummyFactory(42),
                     /*seed=*/7);
  if (auto s = owner.Setup({}); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // --- 3. The analyst side: open a session and PREPARE the query once.
  // Prepare runs parse + dummy-exclusion rewrite + catalog binding and
  // caches the plan on the server; each later Execute reuses it, even as
  // the database keeps growing (appends never invalidate a plan).
  auto session = server.CreateSession();
  auto range_count = session->Prepare(
      "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100");
  if (!range_count.ok()) {
    std::cerr << range_count.status().ToString() << "\n";
    return 1;
  }

  // --- 4. Simulate 2 hours of sensor-style arrivals (1-minute ticks),
  // executing the prepared query every simulated 10 minutes.
  Rng rng(1);
  int64_t received = 0;
  edb::QueryResponse last_response;
  for (int64_t t = 1; t <= 1200; ++t) {
    std::optional<Record> arrival;
    if (rng.Bernoulli(0.4)) {  // a trip arrives this minute
      workload::TripRecord trip;
      trip.pick_time = t;
      trip.pickup_id = rng.UniformInt(1, 265);
      trip.dropoff_id = rng.UniformInt(1, 265);
      trip.trip_distance = 1.0 + rng.UniformDouble() * 5;
      trip.fare = 2.5 + trip.trip_distance * 2.5;
      arrival = trip.ToRecord();
      ++received;
    }
    if (auto s = owner.Tick(std::move(arrival)); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    if (t % 600 != 0) continue;
    auto response = session->Execute(range_count.value());
    if (!response.ok()) {
      std::cerr << response.status().ToString() << "\n";
      return 1;
    }
    // \timing-style per-query line: answer, virtual QET, plan provenance.
    std::cout << "t=" << std::setw(4) << t
              << "  range count = " << std::setw(5)
              << response->result.scalar << "  (QET "
              << response->stats.virtual_seconds << " s, plan "
              << (response->stats.plan_cache_hit ? "reused" : "fresh")
              << ", scanned " << response->stats.records_scanned << ")\n";
    last_response = std::move(response.value());
  }

  // --- 5. What happened. -------------------------------------------------
  auto& response = last_response;
  auto stats = server.stats();
  std::cout << "\nrecords received by owner : " << received << "\n"
            << "records still in cache    : " << owner.logical_gap() << "\n"
            << "real records outsourced   : " << owner.counters().real_synced
            << "\n"
            << "dummy records outsourced  : " << owner.counters().dummy_synced
            << "\n"
            << "server-visible updates    : "
            << owner.update_pattern().num_updates() << " (every T=30 ticks "
            << "with noisy volumes + flushes)\n"
            << "query answer (range count): " << response.result.scalar
            << "\n"
            << "query touched records     : " << response.stats.records_scanned
            << " (all of them - oblivious scan)\n"
            << "plan cache                : " << stats.plan_cache_hits
            << " hits / " << stats.plan_cache_misses
            << " misses over " << stats.queries_executed
            << " executions (prepared once, executed many)\n";
  std::cout << "\nThe server never saw *when* records arrived: only the "
               "noisy update pattern.\n";
  return 0;
}
