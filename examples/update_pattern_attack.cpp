/// \file update_pattern_attack.cpp
/// A semi-honest server's eye view: runs the same growing database under
/// all five synchronization strategies and mounts the update-pattern
/// timing attack (Definition 2 leakage) against each transcript. Shows
/// precision/recall of arrival reconstruction and the per-window count
/// error — privacy made measurable.
///
///   $ ./build/examples/update_pattern_attack
#include <iostream>

#include "common/table_printer.h"
#include "core/engine.h"
#include "core/strategy_factory.h"
#include "sim/adversary.h"
#include "workload/taxi_generator.h"
#include "workload/trip_record.h"

using namespace dpsync;

namespace {
class NullBackend : public SogdbBackend {
 public:
  Status Setup(const std::vector<Record>&) override { return Status::Ok(); }
  Status Update(const std::vector<Record>& g) override {
    count_ += static_cast<int64_t>(g.size());
    return Status::Ok();
  }
  int64_t outsourced_count() const override { return count_; }

 private:
  int64_t count_ = 0;
};
}  // namespace

int main() {
  std::cout << "Mounting the update-pattern timing attack against every "
               "synchronization strategy.\nThe adversary observes only "
               "{(t, |gamma_t|)} and predicts when records arrived.\n\n";

  workload::TaxiConfig tc;
  tc.horizon_minutes = 10080;  // one week
  tc.target_records = 4300;
  auto trace = workload::GenerateTaxiTrace(tc);
  auto truth = trace.ArrivalBits();

  TablePrinter table({"strategy", "epsilon", "updates", "precision", "recall",
                      "per-window count err (w=30)"});
  for (auto kind : kAllStrategies) {
    Rng rng(3);
    StrategyParams params;  // paper defaults
    NullBackend backend;
    DpSyncEngine owner(MakeStrategy(kind, params, &rng), &backend,
                       workload::MakeTripDummyFactory(4), 5);
    if (!owner.Setup({}).ok()) return 1;
    for (int64_t t = 1; t <= tc.horizon_minutes; ++t) {
      const auto& slot = trace.arrivals[static_cast<size_t>(t - 1)];
      std::optional<Record> arrival;
      if (slot) arrival = slot->ToRecord();
      if (!owner.Tick(std::move(arrival)).ok()) return 1;
    }
    auto attack = sim::RunTimingAttack(owner.update_pattern(), truth);
    double window_err =
        sim::WindowCountError(owner.update_pattern(), truth, 30);
    double eps = owner.strategy().epsilon();
    table.AddRow({owner.strategy().name(),
                  eps == kNoPrivacy ? "inf" : TablePrinter::Fmt(eps, 2),
                  std::to_string(owner.update_pattern().num_updates()),
                  TablePrinter::Fmt(attack.precision, 3),
                  TablePrinter::Fmt(attack.recall, 3),
                  TablePrinter::Fmt(window_err, 2)});
  }
  table.Print(std::cout);
  std::cout
      << "\nReading the table: SUR leaks everything (precision = recall = "
         "1, window error 0).\nOTO and SET leak nothing (their transcripts "
         "are data-independent), at the price of\nunbounded error / heavy "
         "dummies. The DP strategies leak only eps-DP-bounded\ninformation: "
         "reconstruction collapses while answers stay accurate.\n";
  return 0;
}
