/// \file dpsync_cli.cpp
/// Command-line experiment driver: run any strategy/engine combination at
/// any scale and emit the metric series as CSV — the tool a downstream
/// user reaches for before wiring the library into their own system.
///
///   $ ./build/examples/dpsync_cli --strategy=timer --engine=oblidb \
///         --eps=0.5 --T=30 --horizon=10080 --records=4300 --csv=out.csv
///
/// Flags (all optional):
///   --strategy=sur|oto|set|timer|ant   (default timer)
///   --engine=oblidb|crypte             (default oblidb)
///   --eps=<double>       privacy budget             (default 0.5)
///   --T=<int>            DP-Timer period            (default 30)
///   --theta=<double>     DP-ANT threshold           (default 15)
///   --flush-f=<int>      flush interval             (default 2000)
///   --flush-s=<int>      flush size                 (default 15)
///   --horizon=<int>      time units                 (default 43200)
///   --records=<int>      target yellow records      (default 18429)
///   --interval=<int>     query firing interval      (default 360)
///   --seed=<int>         experiment seed            (default 99)
///   --backend=memory|segment  physical table storage (default memory)
///   --shards=<int>       shards per table           (default 1)
///   --storage-dir=<path> segment-log root; each run writes a fresh
///                        subdirectory (default: temp, cleaned up)
///   --snapshot=on|off    serve linear scans from epoch snapshots of the
///                        committed prefix (default on; metrics are
///                        invariant — see docs/CONCURRENCY.md)
///   --views=on|off       answer eligible prepared aggregates from
///                        incremental materialized views (default on;
///                        effective only with --snapshot=on; metrics are
///                        invariant, only wall-clock changes)
///   --vectorized=on|off  execute eligible scans on the columnar batch
///                        path (default on; answers and metrics are
///                        bit-identical, only wall-clock changes — see
///                        docs/ARCHITECTURE.md)
///   --parallel-joins=on|off  run hash joins' partition/build/probe
///                        phases on the shared pool (default on; answers
///                        and metrics are bit-identical, only wall-clock
///                        changes)
///   --api=session|oneshot  analyst API driving the schedule: prepared
///                        queries over a session (default) or the legacy
///                        one-shot Query() shim; metrics are identical
///   --no-join            skip the second table and Q3
///   --timing             \timing-style per-query stats after the run
///                        (mean QET, executions, plan-cache hit rate)
///   --csv=<path>         also write series to a CSV file
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "sim/experiment.h"

using namespace dpsync;

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--strategy=sur|oto|set|timer|ant] [--engine=oblidb|crypte]\n"
               "       [--eps=E] [--T=N] [--theta=N] [--flush-f=N] "
               "[--flush-s=N]\n"
               "       [--horizon=N] [--records=N] [--interval=N] [--seed=N]\n"
               "       [--backend=memory|segment] [--shards=N] "
               "[--storage-dir=path]\n"
               "       [--api=session|oneshot] [--snapshot=on|off] "
               "[--views=on|off]\n"
               "       [--vectorized=on|off] [--parallel-joins=on|off]\n"
               "       [--no-join] [--timing]\n"
               "       [--csv=path]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentConfig cfg;
  std::string csv_path;
  bool timing = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "strategy", &v)) {
      if (v == "sur") cfg.strategy = StrategyKind::kSur;
      else if (v == "oto") cfg.strategy = StrategyKind::kOto;
      else if (v == "set") cfg.strategy = StrategyKind::kSet;
      else if (v == "timer") cfg.strategy = StrategyKind::kDpTimer;
      else if (v == "ant") cfg.strategy = StrategyKind::kDpAnt;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "engine", &v)) {
      if (v == "oblidb") cfg.engine = sim::EngineKind::kObliDb;
      else if (v == "crypte") cfg.engine = sim::EngineKind::kCryptEps;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "eps", &v)) {
      cfg.params.epsilon = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "T", &v)) {
      cfg.params.timer_period = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "theta", &v)) {
      cfg.params.ant_threshold = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "flush-f", &v)) {
      cfg.params.flush_interval = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "flush-s", &v)) {
      cfg.params.flush_size = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "horizon", &v)) {
      int64_t h = std::strtoll(v.c_str(), nullptr, 10);
      cfg.yellow.horizon_minutes = h;
      cfg.green.horizon_minutes = h;
      cfg.green.target_records = h * 21300 / 43200;
      if (cfg.yellow.target_records == 18429) {
        cfg.yellow.target_records = h * 18429 / 43200;
      }
    } else if (ParseFlag(argv[i], "records", &v)) {
      cfg.yellow.target_records = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "interval", &v)) {
      int64_t interval = std::strtoll(v.c_str(), nullptr, 10);
      for (auto& q : cfg.queries) {
        q.interval = q.name == "Q3" ? interval * 4 : interval;
      }
    } else if (ParseFlag(argv[i], "seed", &v)) {
      cfg.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "backend", &v)) {
      if (v == "memory") cfg.backend = edb::StorageBackendKind::kInMemory;
      else if (v == "segment") cfg.backend = edb::StorageBackendKind::kSegmentLog;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "shards", &v)) {
      cfg.num_shards = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
      if (cfg.num_shards < 1) return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "storage-dir", &v)) {
      cfg.storage_dir = v;
    } else if (ParseFlag(argv[i], "api", &v)) {
      if (v == "session") cfg.query_api = sim::QueryApi::kSession;
      else if (v == "oneshot") cfg.query_api = sim::QueryApi::kOneShot;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "snapshot", &v)) {
      if (v == "on") cfg.snapshot_scans = true;
      else if (v == "off") cfg.snapshot_scans = false;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "views", &v)) {
      if (v == "on") cfg.materialized_views = true;
      else if (v == "off") cfg.materialized_views = false;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "vectorized", &v)) {
      if (v == "on") cfg.vectorized_execution = true;
      else if (v == "off") cfg.vectorized_execution = false;
      else return Usage(argv[0]);
    } else if (ParseFlag(argv[i], "parallel-joins", &v)) {
      if (v == "on") cfg.parallel_joins = true;
      else if (v == "off") cfg.parallel_joins = false;
      else return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--no-join") == 0) {
      cfg.enable_green = false;
      cfg.queries = sim::DefaultQueries(false);
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
    } else if (ParseFlag(argv[i], "csv", &v)) {
      csv_path = v;
    } else {
      return Usage(argv[0]);
    }
  }

  std::cerr << "running " << StrategyKindName(cfg.strategy) << " on "
            << sim::EngineKindName(cfg.engine) << ", eps="
            << cfg.params.epsilon << ", horizon="
            << cfg.yellow.horizon_minutes << ", storage="
            << edb::StorageBackendKindName(cfg.backend) << " x"
            << cfg.num_shards << " shard(s)...\n";
  auto result = sim::RunExperiment(cfg);
  if (!result.ok()) {
    std::cerr << "experiment failed: " << result.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"query", "mean L1", "max L1", "mean QET (s)"});
  for (const auto& q : result->queries) {
    table.AddRow({q.name, TablePrinter::Fmt(q.mean_l1),
                  TablePrinter::Fmt(q.max_l1),
                  TablePrinter::Fmt(q.mean_qet, 3)});
  }
  table.Print(std::cout);
  std::cout << "mean logical gap : "
            << TablePrinter::Fmt(result->mean_logical_gap) << "\n"
            << "total data (Mb)  : "
            << TablePrinter::Fmt(result->final_total_mb) << "\n"
            << "dummy data (Mb)  : "
            << TablePrinter::Fmt(result->final_dummy_mb) << "\n"
            << "updates posted   : " << result->updates_posted << "\n";

  if (timing) {
    // \timing: what each query actually cost and how the v2 pipeline
    // amortized its front half. On the session API every query is
    // prepared exactly once (misses == distinct queries, zero re-plans
    // across sync epochs); on the one-shot API the plan cache serves
    // every firing after the first.
    const auto& ss = result->server_stats;
    std::cout << "\n\\timing\n";
    TablePrinter qt({"query", "executions", "mean QET (s)",
                     "mean wall (ms)"});
    for (const auto& q : result->queries) {
      qt.AddRow({q.name, std::to_string(q.qet.t.size()),
                 TablePrinter::Fmt(q.mean_qet, 4),
                 TablePrinter::Fmt(q.qet_measured.Summarize().mean() * 1e3,
                                   3)});
    }
    qt.Print(std::cout);
    int64_t lookups = ss.plan_cache_hits + ss.plan_cache_misses;
    std::cout << "plan cache       : " << ss.plan_cache_hits << " hits / "
              << ss.plan_cache_misses << " misses"
              << (lookups > 0
                      ? " (" +
                            TablePrinter::Fmt(100.0 * ss.plan_cache_hits /
                                                  lookups,
                                              1) +
                            "% hit rate)"
                      : "")
              << "\n"
              << "prepares         : " << ss.prepares
              << " (rebinds after schema change: " << ss.plan_rebinds
              << ")\n"
              << "executed         : " << ss.queries_executed
              << " (peak in-flight " << ss.peak_in_flight << ")\n"
              << "snapshot scans   : " << ss.snapshot_scans
              << " (lock-free over the committed prefix)\n"
              << "snapshot joins   : " << ss.snapshot_joins
              << " (lock-free over two pinned prefixes)\n"
              << "view answers     : " << ss.view_hits << " hits / "
              << ss.view_folds
              << " folds (O(1) from materialized aggregates)\n";
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    out << "series,t,value\n";
    for (const auto& q : result->queries) {
      for (size_t i = 0; i < q.l1_error.t.size(); ++i) {
        out << q.name << "_l1," << q.l1_error.t[i] << ","
            << q.l1_error.value[i] << "\n";
      }
      for (size_t i = 0; i < q.qet.t.size(); ++i) {
        out << q.name << "_qet," << q.qet.t[i] << "," << q.qet.value[i]
            << "\n";
      }
    }
    for (size_t i = 0; i < result->logical_gap.t.size(); ++i) {
      out << "gap," << result->logical_gap.t[i] << ","
          << result->logical_gap.value[i] << "\n";
    }
    for (size_t i = 0; i < result->total_mb.t.size(); ++i) {
      out << "total_mb," << result->total_mb.t[i] << ","
          << result->total_mb.value[i] << "\n";
    }
    std::cerr << "series written to " << csv_path << "\n";
  }
  return 0;
}
