/// \file taxi_analytics.cpp
/// The paper's evaluation scenario end-to-end at reduced scale: a taxi
/// provider streams trip records into DP-Sync-protected outsourced tables
/// (Yellow + Green), and an analyst runs the paper's Q1/Q2/Q3 while the
/// data is still growing — comparing answers against the logical ground
/// truth to show the bounded error of the DP strategies.
///
///   $ ./build/examples/taxi_analytics [strategy]
///     strategy in {sur, oto, set, timer, ant}; default timer
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "sim/experiment.h"

using namespace dpsync;

int main(int argc, char** argv) {
  StrategyKind strategy = StrategyKind::kDpTimer;
  if (argc > 1) {
    std::string arg = argv[1];
    if (arg == "sur") strategy = StrategyKind::kSur;
    else if (arg == "oto") strategy = StrategyKind::kOto;
    else if (arg == "set") strategy = StrategyKind::kSet;
    else if (arg == "timer") strategy = StrategyKind::kDpTimer;
    else if (arg == "ant") strategy = StrategyKind::kDpAnt;
    else {
      std::cerr << "usage: taxi_analytics [sur|oto|set|timer|ant]\n";
      return 2;
    }
  }

  sim::ExperimentConfig cfg;
  cfg.strategy = strategy;
  // One simulated week instead of the paper's month, for a quick demo.
  cfg.yellow.horizon_minutes = 10080;
  cfg.yellow.target_records = 4300;
  cfg.green.horizon_minutes = 10080;
  cfg.green.target_records = 4970;
  cfg.params.flush_interval = 1000;

  std::cout << "Streaming one week of synthetic NYC taxi data through "
               "DP-Sync ("
            << StrategyKindName(strategy) << ", eps=" << cfg.params.epsilon
            << ") into the ObliDB-style engine...\n";
  auto result = sim::RunExperiment(cfg);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"query", "mean L1 err", "max L1 err", "mean QET (s)"});
  for (const auto& q : result->queries) {
    table.AddRow({q.name, TablePrinter::Fmt(q.mean_l1),
                  TablePrinter::Fmt(q.max_l1),
                  TablePrinter::Fmt(q.mean_qet, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nmean logical gap : "
            << TablePrinter::Fmt(result->mean_logical_gap) << " records\n"
            << "total outsourced : " << TablePrinter::Fmt(result->final_total_mb)
            << " Mb (" << result->real_synced << " real + "
            << result->dummy_synced << " dummy records)\n"
            << "updates posted   : " << result->updates_posted << "\n";
  std::cout << "\nTry other strategies: OTO's error grows to the full table "
               "size; SET doubles the\noutsourced volume; the DP strategies "
               "stay near SUR on both axes.\n";
  return 0;
}
