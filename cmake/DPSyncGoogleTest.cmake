# GoogleTest resolution cascade. Exposes one canonical target:
#
#   dpsync::gtest_main  — gtest + a main() entry point
#
# Order of preference:
#   1. An installed GoogleTest (find_package, incl. the Debian
#      /usr/src/googletest source package) — no network needed.
#   2. FetchContent from GitHub (pinned release) when the network allows.
#   3. The vendored single-header shim under third_party/minigtest —
#      a last-resort subset implementation so offline builds still verify.
#
# Override with -DDPSYNC_GTEST_PROVIDER=system|fetch|vendored.

set(DPSYNC_GTEST_PROVIDER "auto" CACHE STRING
  "GoogleTest provider: auto|system|fetch|vendored")
set_property(CACHE DPSYNC_GTEST_PROVIDER PROPERTY STRINGS
  auto system fetch vendored)

if(NOT DPSYNC_GTEST_PROVIDER MATCHES "^(auto|system|fetch|vendored)$")
  message(FATAL_ERROR
    "DPSYNC_GTEST_PROVIDER must be auto|system|fetch|vendored, "
    "got '${DPSYNC_GTEST_PROVIDER}'")
endif()

set(_dpsync_gtest_found FALSE)

# --- 1. Installed GoogleTest ------------------------------------------------
if(DPSYNC_GTEST_PROVIDER STREQUAL "auto" OR DPSYNC_GTEST_PROVIDER STREQUAL "system")
  find_package(GTest QUIET)
  if(GTest_FOUND AND TARGET GTest::gtest_main)
    add_library(dpsync_gtest_main INTERFACE)
    target_link_libraries(dpsync_gtest_main INTERFACE GTest::gtest_main)
    set(_dpsync_gtest_found TRUE)
    message(STATUS "dpsync: using installed GoogleTest")
  elseif(EXISTS "/usr/src/googletest/CMakeLists.txt")
    # Debian/Ubuntu googletest source package (libgtest-dev).
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory(/usr/src/googletest
      "${CMAKE_BINARY_DIR}/_deps/system-googletest" EXCLUDE_FROM_ALL)
    add_library(dpsync_gtest_main INTERFACE)
    target_link_libraries(dpsync_gtest_main INTERFACE gtest_main)
    set(_dpsync_gtest_found TRUE)
    message(STATUS "dpsync: using /usr/src/googletest source package")
  elseif(DPSYNC_GTEST_PROVIDER STREQUAL "system")
    message(FATAL_ERROR "DPSYNC_GTEST_PROVIDER=system but no installed GoogleTest found")
  endif()
endif()

# --- 2. FetchContent --------------------------------------------------------
if(NOT _dpsync_gtest_found AND
   (DPSYNC_GTEST_PROVIDER STREQUAL "auto" OR DPSYNC_GTEST_PROVIDER STREQUAL "fetch"))
  set(_dpsync_gtest_url
    "https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz")
  set(_dpsync_gtest_sha256
    "8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7")
  set(_dpsync_gtest_tarball "${CMAKE_BINARY_DIR}/_deps/googletest-v1.14.0.tar.gz")
  # Probe-download first so an offline configure falls through to the shim
  # instead of failing inside FetchContent. The hash is checked manually:
  # EXPECTED_HASH would turn a wrong-content download (captive portal, proxy
  # error page) into a fatal configure error AND leave the bad tarball behind.
  if(NOT EXISTS "${_dpsync_gtest_tarball}")
    file(DOWNLOAD "${_dpsync_gtest_url}" "${_dpsync_gtest_tarball}"
      INACTIVITY_TIMEOUT 15 TIMEOUT 120 STATUS _dpsync_dl_status)
    list(GET _dpsync_dl_status 0 _dpsync_dl_code)
    if(_dpsync_dl_code EQUAL 0)
      file(SHA256 "${_dpsync_gtest_tarball}" _dpsync_dl_hash)
    else()
      set(_dpsync_dl_hash "download-failed")
    endif()
    if(NOT _dpsync_dl_hash STREQUAL _dpsync_gtest_sha256)
      file(REMOVE "${_dpsync_gtest_tarball}")
    endif()
  endif()
  if(EXISTS "${_dpsync_gtest_tarball}")
    include(FetchContent)
    set(FETCHCONTENT_QUIET ON)
    FetchContent_Declare(googletest
      URL "${_dpsync_gtest_tarball}"
      URL_HASH SHA256=${_dpsync_gtest_sha256}
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    add_library(dpsync_gtest_main INTERFACE)
    target_link_libraries(dpsync_gtest_main INTERFACE gtest_main)
    set(_dpsync_gtest_found TRUE)
    message(STATUS "dpsync: using FetchContent GoogleTest v1.14.0")
  elseif(DPSYNC_GTEST_PROVIDER STREQUAL "fetch")
    message(FATAL_ERROR "DPSYNC_GTEST_PROVIDER=fetch but the download failed")
  endif()
endif()

# --- 3. Vendored single-header shim ----------------------------------------
if(NOT _dpsync_gtest_found)
  add_library(dpsync_minigtest_main STATIC
    "${PROJECT_SOURCE_DIR}/third_party/minigtest/gtest_main.cc")
  target_include_directories(dpsync_minigtest_main PUBLIC
    "${PROJECT_SOURCE_DIR}/third_party/minigtest")
  add_library(dpsync_gtest_main INTERFACE)
  target_link_libraries(dpsync_gtest_main INTERFACE dpsync_minigtest_main)
  set(_dpsync_gtest_found TRUE)
  message(STATUS "dpsync: using vendored minigtest shim (offline fallback)")
endif()

add_library(dpsync::gtest_main ALIAS dpsync_gtest_main)
