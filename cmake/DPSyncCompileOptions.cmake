# Shared compile options for the dpsync layer libraries.
#
# dpsync_warnings       — strict -Wall -Wextra interface, applied to library
#                         targets (tests/bench link it too but their own
#                         translation units stay warning-tolerant).
# dpsync_build_settings — sanitizers and other whole-build settings.

add_library(dpsync_warnings INTERFACE)
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(dpsync_warnings INTERFACE -Wall -Wextra)
  if(DPSYNC_WERROR)
    target_compile_options(dpsync_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(dpsync_warnings INTERFACE /W4)
  if(DPSYNC_WERROR)
    target_compile_options(dpsync_warnings INTERFACE /WX)
  endif()
endif()

add_library(dpsync_build_settings INTERFACE)
if(DPSYNC_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "DPSYNC_SANITIZE requires GCC or Clang")
  endif()
  target_compile_options(dpsync_build_settings INTERFACE
    -fsanitize=${DPSYNC_SANITIZE} -fno-omit-frame-pointer -g)
  target_link_options(dpsync_build_settings INTERFACE
    -fsanitize=${DPSYNC_SANITIZE})
endif()

# dpsync_add_library(<layer> SOURCES <files...> [DEPS <layer libs...>])
#
# Declares one layer library with the repo-wide include root (src/) and the
# strict warning set. Header-only layers (no SOURCES) become INTERFACE
# targets transparently.
function(dpsync_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(ARG_SOURCES)
    add_library(${name} STATIC ${ARG_SOURCES})
    target_include_directories(${name} PUBLIC "${PROJECT_SOURCE_DIR}/src")
    target_link_libraries(${name}
      PUBLIC ${ARG_DEPS} dpsync_build_settings
      PRIVATE dpsync_warnings)
  else()
    add_library(${name} INTERFACE)
    target_include_directories(${name} INTERFACE "${PROJECT_SOURCE_DIR}/src")
    target_link_libraries(${name} INTERFACE ${ARG_DEPS} dpsync_build_settings)
  endif()
  add_library(dpsync::${name} ALIAS ${name})
endfunction()
