// minigtest — a single-header, dependency-free subset of the GoogleTest API.
//
// Last-resort fallback used only when neither an installed GoogleTest nor a
// network-fetched one is available (see cmake/DPSyncGoogleTest.cmake). It
// implements exactly the surface the dpsync test suites use:
//
//   TEST / TEST_F / TEST_P, ::testing::Test, ::testing::TestWithParam<T>,
//   INSTANTIATE_TEST_SUITE_P with ::testing::Values / ::testing::Combine,
//   EXPECT_*/ASSERT_* (EQ NE LT LE GT GE TRUE FALSE NEAR DOUBLE_EQ FLOAT_EQ
//   STREQ), ::testing::TempDir(), SUCCEED/FAIL/ADD_FAILURE, "<< msg"
//   streaming on all assertion macros.
//
// Not GoogleTest: no death tests, no matchers, no --gtest_filter.
#ifndef MINIGTEST_GTEST_H_
#define MINIGTEST_GTEST_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

// ---- Failure bookkeeping ---------------------------------------------------

namespace internal {

struct RegisteredTest {
  std::string suite;
  std::string name;
  std::function<void()> run;
};

class Registry {
 public:
  static Registry& Get() {
    static Registry* r = new Registry;
    return *r;
  }
  void Add(RegisteredTest t) { tests_.push_back(std::move(t)); }
  const std::vector<RegisteredTest>& tests() const { return tests_; }

  bool current_failed = false;   // any failure in the running test
  bool current_skipped = false;  // GTEST_SKIP tripped
  bool fatal_requested = false;  // an ASSERT_* tripped (skip TestBody)
  int total_failures = 0;
  /// TEST_P bodies registered after their fixture was already
  /// instantiated ("Fixture.Case" strings). Such bodies are not part of
  /// any instantiation, so running the suite would silently skip them —
  /// RunAllTests refuses to pass while this is non-empty.
  std::vector<std::string> late_param_cases;

 private:
  std::vector<RegisteredTest> tests_;
};

// Value printers for failure messages.
template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, decltype(void(std::declval<std::ostringstream&>()
                                     << std::declval<const T&>()))>
    : std::true_type {};

template <typename T>
std::string PrintValue(const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    return v ? "true" : "false";
  } else if constexpr (std::is_same_v<T, std::nullptr_t>) {
    return "nullptr";
  } else if constexpr (std::is_same_v<T, unsigned char> ||
                       std::is_same_v<T, signed char> ||
                       std::is_same_v<T, char>) {
    return std::to_string(static_cast<int>(v));
  } else if constexpr (std::is_convertible_v<T, std::string>) {
    return "\"" + std::string(v) + "\"";
  } else if constexpr (IsStreamable<T>::value) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable " + std::to_string(sizeof(T)) + "-byte object>";
  }
}

}  // namespace internal

// Result of one assertion check: contextually false on failure, carries the
// formatted message.
class AssertionResult {
 public:
  explicit AssertionResult(bool ok) : ok_(ok) {}
  AssertionResult(bool ok, std::string msg) : ok_(ok), msg_(std::move(msg)) {}
  explicit operator bool() const { return ok_; }
  const std::string& message() const { return msg_; }

 private:
  bool ok_;
  std::string msg_;
};

// Collects the user's "<< extra" text appended to an assertion macro.
class Message {
 public:
  template <typename T>
  Message& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }
  std::string str() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

namespace internal {

// `AssertHelper(...) = Message()` reports the failure; operator= has lower
// precedence than the user's operator<< chain, so extras attach first. This
// mirrors the real GoogleTest expansion and lets ASSERT_* prefix the whole
// statement with `return`.
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, std::string msg, bool fatal)
      : file_(file), line_(line), msg_(std::move(msg)), fatal_(fatal) {}
  void operator=(const Message& m) const {
    std::string full = msg_;
    if (!m.str().empty()) full += "\n" + m.str();
    std::fprintf(stderr, "%s:%d: Failure\n%s\n", file_, line_, full.c_str());
    Registry::Get().current_failed = true;
    Registry::Get().total_failures++;
    if (fatal_) Registry::Get().fatal_requested = true;
  }

 private:
  const char* file_;
  int line_;
  std::string msg_;
  bool fatal_;
};

class SkipHelper {
 public:
  SkipHelper(const char* file, int line) : file_(file), line_(line) {}
  void operator=(const Message& m) const {
    std::fprintf(stderr, "%s:%d: Skipped\n%s\n", file_, line_,
                 m.str().c_str());
    Registry::Get().current_skipped = true;
  }

 private:
  const char* file_;
  int line_;
};

// ---- Comparison helpers ----------------------------------------------------

template <typename A, typename B>
AssertionResult CmpHelperEQ(const char* ea, const char* eb, const A& a,
                            const B& b) {
  if (a == b) return AssertionResult(true);
  return AssertionResult(
      false, std::string("Expected equality of these values:\n  ") + ea +
                 "\n    Which is: " + PrintValue(a) + "\n  " + eb +
                 "\n    Which is: " + PrintValue(b));
}
inline AssertionResult CmpHelperSTREQ(const char* ea, const char* eb,
                                      const char* a, const char* b) {
  bool eq = (a == nullptr || b == nullptr) ? a == b : std::strcmp(a, b) == 0;
  if (eq) return AssertionResult(true);
  return AssertionResult(
      false, std::string("Expected equality of:\n  ") + ea + "\n    Which is: " +
                 (a ? "\"" + std::string(a) + "\"" : "(null)") + "\n  " + eb +
                 "\n    Which is: " +
                 (b ? "\"" + std::string(b) + "\"" : "(null)"));
}

#define MINIGTEST_DEFINE_CMP_HELPER(name, op)                                \
  template <typename A, typename B>                                          \
  AssertionResult CmpHelper##name(const char* ea, const char* eb,            \
                                  const A& a, const B& b) {                  \
    if (a op b) return AssertionResult(true);                                \
    return AssertionResult(false, std::string("Expected: (") + ea + ") " #op \
                                      " (" + eb + "), actual: " +            \
                                      PrintValue(a) + " vs " +               \
                                      PrintValue(b));                        \
  }
MINIGTEST_DEFINE_CMP_HELPER(NE, !=)
MINIGTEST_DEFINE_CMP_HELPER(LT, <)
MINIGTEST_DEFINE_CMP_HELPER(LE, <=)
MINIGTEST_DEFINE_CMP_HELPER(GT, >)
MINIGTEST_DEFINE_CMP_HELPER(GE, >=)
#undef MINIGTEST_DEFINE_CMP_HELPER

inline AssertionResult CmpHelperBool(const char* expr, bool value,
                                     bool expected) {
  if (value == expected) return AssertionResult(true);
  return AssertionResult(false, std::string("Value of: ") + expr +
                                    "\n  Actual: " + (value ? "true" : "false") +
                                    "\nExpected: " +
                                    (expected ? "true" : "false"));
}

inline AssertionResult CmpHelperNear(const char* ea, const char* eb,
                                     const char* et, double a, double b,
                                     double tol) {
  if (std::fabs(a - b) <= tol) return AssertionResult(true);
  return AssertionResult(
      false, std::string("The difference between ") + ea + " and " + eb +
                 " is " + std::to_string(std::fabs(a - b)) +
                 ", which exceeds " + et + "\n  " + ea + " evaluates to " +
                 std::to_string(a) + ",\n  " + eb + " evaluates to " +
                 std::to_string(b));
}

}  // namespace internal

// ---- Fixtures --------------------------------------------------------------

class Test {
 public:
  virtual ~Test() = default;

 protected:
  virtual void SetUp() {}
  virtual void TearDown() {}

 public:
  virtual void TestBody() = 0;
  void Run() {
    SetUp();
    if (!internal::Registry::Get().fatal_requested) TestBody();
    TearDown();
  }
};

template <typename P>
class TestWithParam : public Test {
 public:
  using ParamType = P;
  const P& GetParam() const { return *param_; }
  static void SetParamStorage(const P* p) { param_ = p; }

 private:
  static inline const P* param_ = nullptr;
};

// ---- Param generators ------------------------------------------------------

template <typename P>
struct ParamGenerator {
  using value_type = P;
  std::vector<P> values;
};

template <typename... Ts>
auto Values(Ts&&... vals) {
  using P = typename std::common_type<Ts...>::type;
  return ParamGenerator<P>{{static_cast<P>(std::forward<Ts>(vals))...}};
}

namespace internal {
template <typename Tuple, std::size_t I>
std::vector<Tuple> CombineProduct(const std::vector<Tuple>& acc) {
  return acc;
}
template <typename Tuple, std::size_t I, typename G, typename... Rest>
std::vector<Tuple> CombineProduct(const std::vector<Tuple>& acc, const G& g,
                                  const Rest&... rest) {
  std::vector<Tuple> next;
  for (const auto& t : acc)
    for (const auto& v : g.values) {
      Tuple c = t;
      std::get<I>(c) = v;
      next.push_back(c);
    }
  return CombineProduct<Tuple, I + 1>(next, rest...);
}
}  // namespace internal

template <typename... Gs>
auto Combine(const Gs&... gens) {
  using Tuple = std::tuple<typename std::decay_t<Gs>::value_type...>;
  std::vector<Tuple> acc{Tuple{}};
  return ParamGenerator<Tuple>{
      internal::CombineProduct<Tuple, 0>(acc, gens...)};
}

// ---- TempDir ---------------------------------------------------------------

inline std::string TempDir() {
  const char* t = std::getenv("TMPDIR");
  std::string dir = t ? t : "/tmp";
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir;
}

// ---- Registration ----------------------------------------------------------

namespace internal {

template <typename Fixture>
int RegisterTest(const char* suite, const char* name) {
  Registry::Get().Add({suite, name, [] {
                         Fixture f;
                         f.Run();
                       }});
  return 0;
}

// Per-fixture registry of TEST_P cases. The registry is keyed by the user's
// fixture type; each case supplies its generated subclass via AddCase<C>().
template <typename Fixture>
struct ParamSuite {
  static std::vector<std::pair<std::string, std::function<void()>>>& Cases() {
    static std::vector<std::pair<std::string, std::function<void()>>> c;
    return c;
  }
  /// Set once the fixture has been instantiated. The shim expands
  /// INSTANTIATE_TEST_SUITE_P over the cases registered *so far*, so a
  /// TEST_P body that registers after this point would never run — real
  /// GoogleTest would still pick it up, making the gap a silent
  /// shim-only coverage hole. AddCase records such late bodies loudly
  /// and RunAllTests fails on them.
  static bool& Instantiated() {
    static bool instantiated = false;
    return instantiated;
  }
  template <typename CaseClass>
  static int AddCase(const char* fixture_name, const char* name) {
    if (Instantiated()) {
      std::string label = std::string(fixture_name) + "." + name;
      std::fprintf(stderr,
                   "minigtest: TEST_P(%s, %s) registered after "
                   "INSTANTIATE_TEST_SUITE_P(%s) — this body would be "
                   "silently dropped; move it above the instantiation.\n",
                   fixture_name, name, fixture_name);
      Registry::Get().late_param_cases.push_back(std::move(label));
    }
    Cases().emplace_back(name, [] {
      CaseClass f;
      f.Run();
    });
    return 0;
  }
};

// Instantiates every TEST_P case of `Fixture` registered so far, once per
// parameter value. The shim requires INSTANTIATE_TEST_SUITE_P to appear
// after the TEST_P bodies in the translation unit — enforced: a TEST_P
// registering after its fixture's instantiation is reported at
// registration time and fails RunAllTests (see ParamSuite::AddCase).
template <typename Fixture, typename Gen>
int InstantiateParamSuite(const char* prefix, const char* suite,
                          const Gen& gen) {
  using P = typename Fixture::ParamType;
  ParamSuite<Fixture>::Instantiated() = true;
  // Deliberately leaked per-call storage: GetParam() hands out pointers into
  // it for the life of the program. Must NOT be a function-local static —
  // two INSTANTIATE calls for the same <Fixture, Gen> pair would silently
  // share the first call's parameter values.
  auto* params = new std::vector<P>(gen.values.begin(), gen.values.end());
  for (std::size_t i = 0; i < params->size(); ++i) {
    for (auto& kase : ParamSuite<Fixture>::Cases()) {
      const P* p = &(*params)[i];
      auto body = kase.second;
      Registry::Get().Add({std::string(prefix) + "/" + suite,
                           kase.first + "/" + std::to_string(i), [p, body] {
                             Fixture::SetParamStorage(p);
                             body();
                           }});
    }
  }
  return 0;
}

}  // namespace internal

inline int RunAllTests() {
  auto& reg = internal::Registry::Get();
  int failed_tests = 0;
  const auto& tests = reg.tests();
  // An empty registry means a registration bug (e.g. a TEST_P suite that
  // never instantiated), not a passing suite — fail loudly.
  if (tests.empty()) {
    std::fprintf(stderr, "minigtest: no tests registered — failing.\n");
    return 1;
  }
  // TEST_P bodies that landed after their fixture's instantiation never
  // made it into any registered test: the suite is structurally
  // incomplete even if every registered test passes.
  if (!reg.late_param_cases.empty()) {
    for (const auto& label : reg.late_param_cases) {
      std::fprintf(stderr,
                   "minigtest: %s was registered after its "
                   "INSTANTIATE_TEST_SUITE_P and never ran.\n",
                   label.c_str());
    }
    return 1;
  }
  std::printf("[==========] Running %zu tests (minigtest).\n", tests.size());
  for (const auto& t : tests) {
    reg.current_failed = false;
    reg.current_skipped = false;
    reg.fatal_requested = false;
    std::printf("[ RUN      ] %s.%s\n", t.suite.c_str(), t.name.c_str());
    t.run();
    if (reg.current_failed) {
      ++failed_tests;
      std::printf("[  FAILED  ] %s.%s\n", t.suite.c_str(), t.name.c_str());
    } else if (reg.current_skipped) {
      std::printf("[  SKIPPED ] %s.%s\n", t.suite.c_str(), t.name.c_str());
    } else {
      std::printf("[       OK ] %s.%s\n", t.suite.c_str(), t.name.c_str());
    }
  }
  std::printf("[==========] %zu tests ran; %d failed.\n", tests.size(),
              failed_tests);
  return failed_tests == 0 ? 0 : 1;
}

}  // namespace testing

// ---- Test declaration macros -----------------------------------------------

#define MINIGTEST_CONCAT_(a, b) a##b
#define MINIGTEST_CONCAT(a, b) MINIGTEST_CONCAT_(a, b)
#define MINIGTEST_CLASS(suite, name) suite##_##name##_MiniGTest

#define MINIGTEST_TEST_(suite, name, parent)                                 \
  class MINIGTEST_CLASS(suite, name) : public parent {                       \
    void TestBody() override;                                                \
  };                                                                         \
  static const int MINIGTEST_CONCAT(minigtest_reg_, __LINE__) =              \
      ::testing::internal::RegisterTest<MINIGTEST_CLASS(suite, name)>(       \
          #suite, #name);                                                    \
  void MINIGTEST_CLASS(suite, name)::TestBody()

#define TEST(suite, name) MINIGTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MINIGTEST_TEST_(fixture, name, fixture)

#define TEST_P(fixture, name)                                                \
  class MINIGTEST_CLASS(fixture, name) : public fixture {                    \
    void TestBody() override;                                                \
  };                                                                         \
  static const int MINIGTEST_CONCAT(minigtest_preg_, __LINE__) =             \
      ::testing::internal::ParamSuite<fixture>::AddCase<MINIGTEST_CLASS(     \
          fixture, name)>(#fixture, #name);                                  \
  void MINIGTEST_CLASS(fixture, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, gen, ...)                  \
  static const int MINIGTEST_CONCAT(minigtest_inst_, __LINE__) =             \
      ::testing::internal::InstantiateParamSuite<fixture>(#prefix, #fixture, \
                                                          gen)
#define INSTANTIATE_TEST_CASE_P INSTANTIATE_TEST_SUITE_P

// ---- Assertion macros ------------------------------------------------------

// `if (ar) ; else <maybe return> AssertHelper(...) = Message() << extras;`
#define MINIGTEST_CHECK_(expr_result, fatal, on_fail)                        \
  if (const ::testing::AssertionResult mg_ar = (expr_result))                \
    ;                                                                        \
  else                                                                       \
    on_fail ::testing::internal::AssertHelper(__FILE__, __LINE__,            \
                                              mg_ar.message(), fatal) =      \
        ::testing::Message()

#define MINIGTEST_EXPECT_(expr_result) MINIGTEST_CHECK_(expr_result, false, )
#define MINIGTEST_ASSERT_(expr_result) MINIGTEST_CHECK_(expr_result, true, return)

#define EXPECT_EQ(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperEQ(#a, #b, (a), (b)))
#define ASSERT_EQ(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperEQ(#a, #b, (a), (b)))
#define EXPECT_NE(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperNE(#a, #b, (a), (b)))
#define ASSERT_NE(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperNE(#a, #b, (a), (b)))
#define EXPECT_LT(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperLT(#a, #b, (a), (b)))
#define ASSERT_LT(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperLT(#a, #b, (a), (b)))
#define EXPECT_LE(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperLE(#a, #b, (a), (b)))
#define ASSERT_LE(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperLE(#a, #b, (a), (b)))
#define EXPECT_GT(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperGT(#a, #b, (a), (b)))
#define ASSERT_GT(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperGT(#a, #b, (a), (b)))
#define EXPECT_GE(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperGE(#a, #b, (a), (b)))
#define ASSERT_GE(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperGE(#a, #b, (a), (b)))

#define EXPECT_TRUE(c)                                                       \
  MINIGTEST_EXPECT_(                                                         \
      ::testing::internal::CmpHelperBool(#c, static_cast<bool>(c), true))
#define ASSERT_TRUE(c)                                                       \
  MINIGTEST_ASSERT_(                                                         \
      ::testing::internal::CmpHelperBool(#c, static_cast<bool>(c), true))
#define EXPECT_FALSE(c)                                                      \
  MINIGTEST_EXPECT_(                                                         \
      ::testing::internal::CmpHelperBool(#c, static_cast<bool>(c), false))
#define ASSERT_FALSE(c)                                                      \
  MINIGTEST_ASSERT_(                                                         \
      ::testing::internal::CmpHelperBool(#c, static_cast<bool>(c), false))

#define EXPECT_NEAR(a, b, tol)                                               \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperNear(                      \
      #a, #b, #tol, static_cast<double>(a), static_cast<double>(b),          \
      static_cast<double>(tol)))
#define ASSERT_NEAR(a, b, tol)                                               \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperNear(                      \
      #a, #b, #tol, static_cast<double>(a), static_cast<double>(b),          \
      static_cast<double>(tol)))

// 4-ULP equality is approximated with a tight relative tolerance.
#define EXPECT_DOUBLE_EQ(a, b) \
  EXPECT_NEAR(a, b, 1e-12 * (1.0 + std::fabs(static_cast<double>(a))))
#define ASSERT_DOUBLE_EQ(a, b) \
  ASSERT_NEAR(a, b, 1e-12 * (1.0 + std::fabs(static_cast<double>(a))))
#define EXPECT_FLOAT_EQ(a, b) \
  EXPECT_NEAR(a, b, 1e-6 * (1.0 + std::fabs(static_cast<double>(a))))

#define EXPECT_STREQ(a, b) \
  MINIGTEST_EXPECT_(::testing::internal::CmpHelperSTREQ(#a, #b, (a), (b)))
#define ASSERT_STREQ(a, b) \
  MINIGTEST_ASSERT_(::testing::internal::CmpHelperSTREQ(#a, #b, (a), (b)))

#define ADD_FAILURE() \
  MINIGTEST_EXPECT_(::testing::AssertionResult(false, "Failed"))
#define FAIL() \
  MINIGTEST_ASSERT_(::testing::AssertionResult(false, "Failed"))
#define SUCCEED() \
  MINIGTEST_EXPECT_(::testing::AssertionResult(true))
#define GTEST_SKIP() \
  return ::testing::internal::SkipHelper(__FILE__, __LINE__) = \
      ::testing::Message()

#endif  // MINIGTEST_GTEST_H_
