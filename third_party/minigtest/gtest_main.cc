#include "gtest/gtest.h"

int main(int, char**) { return testing::RunAllTests(); }
